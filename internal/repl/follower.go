package repl

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"humancomp/internal/store"
)

// Lag is a follower's replication position relative to its leader.
type Lag struct {
	// Seq is the sequence delta: leader's newest known sequence minus the
	// follower's last applied one.
	Seq int64
	// Seconds is the wall-clock staleness: how long ago the follower last
	// made progress (applied a record or confirmed it was caught up).
	Seconds float64
	// Connected reports whether the stream is currently attached.
	Connected bool
}

// FollowerOptions configures a Follower.
type FollowerOptions struct {
	// Leader is the leader's base URL (scheme://host:port).
	Leader string
	// Client is the HTTP client for the stream; nil selects a default with
	// no overall timeout (the stream is long-lived).
	Client *http.Client
	// Term is the follower's current epoch (from its term file). Streams
	// with a lower term are refused.
	Term int64
	// Apply consumes one verified record in sequence order. A non-nil
	// error is fatal to the follower: applied state has diverged from the
	// log, which no retry can mend.
	Apply func(seq int64, e store.Event) error
	// OnTermChange, when non-nil, is called (before further applies) when
	// the stream header carries a higher term than the follower's own, so
	// the caller can persist the new epoch.
	OnTermChange func(term int64) error
	// ReconnectDelay is the pause between stream attempts; 0 selects 100ms.
	ReconnectDelay time.Duration
	// Logger receives reconnect/refusal diagnostics; nil discards them.
	Logger *slog.Logger
}

// Follower tails a leader's WAL stream: it connects from its last applied
// sequence, verifies and applies each record, and keeps reconnecting
// through drops until its context is cancelled. It does NOT bootstrap the
// snapshot — do that first (FetchSnapshot) so sequence 1 lands on the
// right base state.
type Follower struct {
	leader  string
	hc      *http.Client
	apply   func(seq int64, e store.Event) error
	onTerm  func(term int64) error
	delay   time.Duration
	log     *slog.Logger
	term    atomic.Int64
	applied atomic.Int64
	// leaderSeq is the newest sequence the leader has advertised (stream
	// headers and applied records); lag is leaderSeq - applied.
	leaderSeq atomic.Int64
	// progressNS is the unix-nano time of the last forward progress.
	progressNS atomic.Int64
	connected  atomic.Bool
}

// NewFollower returns a follower ready to Run.
func NewFollower(opts FollowerOptions) *Follower {
	f := &Follower{
		leader: opts.Leader,
		hc:     opts.Client,
		apply:  opts.Apply,
		onTerm: opts.OnTermChange,
		delay:  opts.ReconnectDelay,
		log:    opts.Logger,
	}
	if f.hc == nil {
		f.hc = &http.Client{}
	}
	if f.delay <= 0 {
		f.delay = 100 * time.Millisecond
	}
	if f.log == nil {
		f.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	f.term.Store(opts.Term)
	f.progressNS.Store(time.Now().UnixNano())
	return f
}

// FetchSnapshot streams the leader's bootstrap snapshot — the state at
// sequence 0 of its current WAL.
func FetchSnapshot(ctx context.Context, hc *http.Client, leader string) (io.ReadCloser, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, leader+"/v1/repl/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("repl: snapshot fetch: %s: %s", resp.Status, body)
	}
	return resp.Body, nil
}

// Term returns the follower's current epoch.
func (f *Follower) Term() int64 { return f.term.Load() }

// Applied returns the last sequence applied to the local store.
func (f *Follower) Applied() int64 { return f.applied.Load() }

// Lag reports the follower's current replication lag. Seconds is 0 while
// the stream is attached and fully applied (idle with no traffic is not
// lag); otherwise it is the time since the follower last made progress,
// which covers both a stalled catch-up and a dead leader.
func (f *Follower) Lag() Lag {
	lag := f.leaderSeq.Load() - f.applied.Load()
	if lag < 0 {
		lag = 0
	}
	connected := f.connected.Load()
	secs := 0.0
	if !connected || lag > 0 {
		secs = time.Since(time.Unix(0, f.progressNS.Load())).Seconds()
	}
	return Lag{Seq: lag, Seconds: secs, Connected: connected}
}

// Run tails the leader until ctx is cancelled, reconnecting through
// transport drops. It returns nil on cancellation, ErrStaleTerm when the
// leader is a fenced old epoch, and other errors only when applying a
// record failed (local state diverged).
func (f *Follower) Run(ctx context.Context) error {
	for {
		err := f.stream(ctx)
		f.connected.Store(false)
		switch {
		case ctx.Err() != nil:
			return nil
		case err == nil:
			// Stream ended cleanly (leader shut down); retry.
		case err == ErrStaleTerm:
			return err
		case isFatalApply(err):
			return err
		default:
			f.log.Debug("repl stream dropped; reconnecting", "err", err)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(f.delay):
		}
	}
}

// fatalApplyError marks apply-path failures that reconnecting cannot fix.
type fatalApplyError struct{ err error }

func (e fatalApplyError) Error() string { return e.err.Error() }
func (e fatalApplyError) Unwrap() error { return e.err }

func isFatalApply(err error) bool {
	_, ok := err.(fatalApplyError)
	return ok
}

// stream runs one connection: request from applied+1, check terms, apply
// records as they arrive.
func (f *Follower) stream(ctx context.Context) error {
	from := f.applied.Load() + 1
	u := fmt.Sprintf("%s/v1/repl/wal?from=%s", f.leader, url.QueryEscape(fmt.Sprint(from)))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("repl: stream: %s: %s", resp.Status, body)
	}

	br := bufio.NewReaderSize(resp.Body, 64*1024)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("repl: reading stream header: %w", err)
	}
	var hdr StreamHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return fmt.Errorf("repl: decoding stream header: %w", err)
	}
	switch cur := f.term.Load(); {
	case hdr.Term < cur:
		f.log.Warn("refusing stream from fenced leader", "leader_term", hdr.Term, "term", cur)
		return ErrStaleTerm
	case hdr.Term > cur:
		if f.onTerm != nil {
			if err := f.onTerm(hdr.Term); err != nil {
				return fatalApplyError{fmt.Errorf("repl: persisting term %d: %w", hdr.Term, err)}
			}
		}
		f.term.Store(hdr.Term)
	}
	if hdr.LastSeq > f.leaderSeq.Load() {
		f.leaderSeq.Store(hdr.LastSeq)
	}
	f.connected.Store(true)
	if hdr.LastSeq <= f.applied.Load() {
		f.progressNS.Store(time.Now().UnixNano())
	}

	sc := store.NewRecordScanner(br, from-1)
	for sc.Scan() {
		seq := sc.Seq()
		if err := f.apply(seq, sc.Event()); err != nil {
			return fatalApplyError{fmt.Errorf("repl: applying seq %d: %w", seq, err)}
		}
		f.applied.Store(seq)
		if seq > f.leaderSeq.Load() {
			f.leaderSeq.Store(seq)
		}
		f.progressNS.Store(time.Now().UnixNano())
	}
	// Clean EOF or torn mid-record cut: either way resume from the last
	// fully applied sequence on the next connection.
	if err := sc.Err(); err != nil && err != store.ErrTornRecord {
		if ctx.Err() != nil {
			return nil
		}
		return err
	}
	return nil
}
