package repl

import (
	"errors"
	"sync/atomic"
	"time"

	"humancomp/internal/store"
)

// ErrNotWritable is returned by a SwitchableJournal with no WAL attached:
// the node is a follower and its write path is fenced off. The dispatch
// layer normally blocks writes before they reach the journal (read-only
// mode); this is the backstop underneath it.
var ErrNotWritable = errors.New("repl: node is not writable (follower)")

// SwitchableJournal is a core journal whose backing WAL can be attached
// atomically at promotion time: a follower's System is built over an empty
// one, and promotion Sets the local WAL so the first accepted write lands
// on the same log the replication stream was feeding. It satisfies all
// four journal capabilities (plain, batch, observed, observed-batch).
type SwitchableJournal struct {
	wal atomic.Pointer[store.WAL]
}

// Set attaches the backing WAL, flipping the journal writable.
func (j *SwitchableJournal) Set(w *store.WAL) { j.wal.Store(w) }

// WAL returns the attached log, or nil before promotion.
func (j *SwitchableJournal) WAL() *store.WAL { return j.wal.Load() }

// Append implements core.Journal.
func (j *SwitchableJournal) Append(e store.Event) error {
	w := j.wal.Load()
	if w == nil {
		return ErrNotWritable
	}
	return w.Append(e)
}

// AppendBatch implements core.BatchJournal.
func (j *SwitchableJournal) AppendBatch(events []store.Event) error {
	w := j.wal.Load()
	if w == nil {
		return ErrNotWritable
	}
	return w.AppendBatch(events)
}

// AppendObserved implements core.ObservedJournal.
func (j *SwitchableJournal) AppendObserved(e store.Event) (write, sync time.Duration, err error) {
	w := j.wal.Load()
	if w == nil {
		return 0, 0, ErrNotWritable
	}
	return w.AppendObserved(e)
}

// AppendBatchObserved implements core.ObservedBatchJournal.
func (j *SwitchableJournal) AppendBatchObserved(events []store.Event) (write, sync time.Duration, err error) {
	w := j.wal.Load()
	if w == nil {
		return 0, 0, ErrNotWritable
	}
	return w.AppendBatchObserved(events)
}
