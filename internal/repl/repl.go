// Package repl implements leader→follower WAL shipping and failover for
// the task service. The leader streams its write-ahead log over HTTP as
// the same length-prefixed, CRC32C-checksummed v2 records it writes to
// disk (internal/store); a follower boots from the leader's snapshot,
// tails the stream, applies each verified record to its own store, and can
// be promoted to leader when the old one dies.
//
// Consistency contract: a record enters the stream only after the leader's
// WAL has flushed it — exactly the set of acknowledged events — and a
// follower applies only complete, checksum-verified records, which is the
// streaming form of the truncating-recovery rule (longest valid prefix
// wins, a torn tail is never applied). Promotion therefore needs no
// reconciliation: whatever the follower has applied IS the longest valid
// prefix it ever received.
//
// Epoch fencing: every stream response opens with a header carrying the
// sender's term, a counter bumped (and persisted) at each promotion. A
// consumer refuses a stream whose term is lower than its own, so a zombie
// leader — killed operationally but still running — cannot feed stale
// records to nodes that have moved on.
package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// StreamHeader is the first line of a /v1/repl/wal response body (JSON,
// newline-terminated), followed by raw v2 record frames. From echoes the
// request cursor; LastSeq is the newest sequence the sender had at connect
// time, letting the consumer measure its initial lag.
type StreamHeader struct {
	Term    int64 `json:"term"`
	From    int64 `json:"from"`
	LastSeq int64 `json:"last_seq"`
}

// Status is the /v1/repl/status response body.
type Status struct {
	Term    int64 `json:"term"`
	LastSeq int64 `json:"last_seq"`
}

// ErrStaleTerm reports a stream whose header term is lower than the
// consumer's own: the sender is a fenced old leader and its records must
// not be applied.
var ErrStaleTerm = errors.New("repl: stale term")

// LoadTerm reads a persisted term from path. A missing file is term 0 (the
// node has never been promoted and has never seen a promoted leader).
func LoadTerm(path string) (int64, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	term, err := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: parsing term file %s: %w", path, err)
	}
	return term, nil
}

// SaveTerm durably persists term to path (write-temp, fsync, rename), so a
// promoted node still fences the old epoch after its own restart.
func SaveTerm(path string, term int64) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := fmt.Fprintf(tmp, "%d\n", term); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// writeJSONLine writes v as one newline-terminated JSON document.
func writeJSONLine(w interface{ Write([]byte) (int, error) }, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
