package repl

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"humancomp/internal/store"
	"humancomp/internal/task"
)

var t0 = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

func submitEvent(t *testing.T, id task.ID) store.Event {
	t.Helper()
	tk, err := task.New(id, task.Label, task.Payload{ImageID: int(id)}, 1, t0)
	if err != nil {
		t.Fatal(err)
	}
	return store.Event{Kind: store.EventSubmit, At: t0, Task: tk}
}

// leaderHarness is an in-process leader: a WAL on disk tapped into a
// Source, served over httptest.
type leaderHarness struct {
	t      *testing.T
	wal    *store.WAL
	src    *Source
	srv    *httptest.Server
	walBuf *os.File
}

func newLeader(t *testing.T, tailSize int) *leaderHarness {
	t.Helper()
	dir := t.TempDir()
	walPath := filepath.Join(dir, "leader.wal")
	f, err := os.Create(walPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	src := NewSource(SourceOptions{
		Term:     1,
		WALPath:  walPath,
		Snapshot: SnapshotBytes([]byte("{}")),
		TailSize: tailSize,
	})
	wal := store.NewWALWith(f, store.WALOptions{OnRecord: src.OnRecord})
	t.Cleanup(func() { wal.Close() })
	srv := httptest.NewServer(src.Handler(nil))
	t.Cleanup(srv.Close)
	t.Cleanup(src.Close)
	return &leaderHarness{t: t, wal: wal, src: src, srv: srv, walBuf: f}
}

// applyRecorder collects applied events for assertions.
type applyRecorder struct {
	mu   sync.Mutex
	seqs []int64
	ids  []task.ID
}

func (a *applyRecorder) apply(seq int64, e store.Event) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seqs = append(a.seqs, seq)
	if e.Task != nil {
		a.ids = append(a.ids, e.Task.ID)
	}
	return nil
}

func (a *applyRecorder) appliedSeqs() []int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int64(nil), a.seqs...)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestFollowerTailsLiveStream(t *testing.T) {
	l := newLeader(t, DefaultTailSize)
	for i := 1; i <= 3; i++ {
		if err := l.wal.Append(submitEvent(t, task.ID(i))); err != nil {
			t.Fatal(err)
		}
	}

	rec := &applyRecorder{}
	f := NewFollower(FollowerOptions{Leader: l.srv.URL, Term: 1, Apply: rec.apply})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	// Catch up on the backlog, then see live appends arrive.
	waitFor(t, 5*time.Second, func() bool { return f.Applied() >= 3 })
	for i := 4; i <= 6; i++ {
		if err := l.wal.Append(submitEvent(t, task.ID(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return f.Applied() >= 6 })

	seqs := rec.appliedSeqs()
	for i, s := range seqs {
		if s != int64(i+1) {
			t.Fatalf("applied seqs = %v, want 1..6 in order", seqs)
		}
	}
	lag := f.Lag()
	if lag.Seq != 0 || !lag.Connected {
		t.Fatalf("caught-up lag = %+v", lag)
	}
	if lag.Seconds != 0 {
		t.Fatalf("idle connected follower reports staleness %v", lag.Seconds)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v, want nil on cancel", err)
	}
}

func TestFollowerCatchesUpFromFileFallback(t *testing.T) {
	// Tail of 2: most of the backlog is only on disk, forcing streamFile.
	l := newLeader(t, 2)
	const total = 50
	for i := 1; i <= total; i++ {
		if err := l.wal.Append(submitEvent(t, task.ID(i))); err != nil {
			t.Fatal(err)
		}
	}

	rec := &applyRecorder{}
	f := NewFollower(FollowerOptions{Leader: l.srv.URL, Term: 1, Apply: rec.apply})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)

	waitFor(t, 10*time.Second, func() bool { return f.Applied() >= total })
	seqs := rec.appliedSeqs()
	if len(seqs) != total {
		t.Fatalf("applied %d records, want %d", len(seqs), total)
	}
	for i, s := range seqs {
		if s != int64(i+1) {
			t.Fatalf("gap or reorder at %d: %v", i, seqs[max(0, i-2):i+1])
		}
	}
}

func TestFollowerRefusesFencedLeader(t *testing.T) {
	l := newLeader(t, DefaultTailSize) // term 1
	rec := &applyRecorder{}
	f := NewFollower(FollowerOptions{Leader: l.srv.URL, Term: 5, Apply: rec.apply})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStaleTerm) {
			t.Fatalf("Run = %v, want ErrStaleTerm", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower kept streaming from a fenced leader")
	}
}

func TestFollowerAdoptsHigherTerm(t *testing.T) {
	l := newLeader(t, DefaultTailSize)
	l.src.SetTerm(7)
	if err := l.wal.Append(submitEvent(t, 1)); err != nil {
		t.Fatal(err)
	}

	var persisted int64
	rec := &applyRecorder{}
	f := NewFollower(FollowerOptions{
		Leader: l.srv.URL, Term: 2, Apply: rec.apply,
		OnTermChange: func(term int64) error { persisted = term; return nil },
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)
	waitFor(t, 5*time.Second, func() bool { return f.Applied() >= 1 })
	if f.Term() != 7 || persisted != 7 {
		t.Fatalf("term = %d (persisted %d), want 7", f.Term(), persisted)
	}
}

func TestStreamCursorBeyondLogEndConflicts(t *testing.T) {
	l := newLeader(t, DefaultTailSize)
	if err := l.wal.Append(submitEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(l.srv.URL + "/v1/repl/wal?from=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("from beyond end = %d, want 409", resp.StatusCode)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	l := newLeader(t, DefaultTailSize)
	rc, err := FetchSnapshot(context.Background(), nil, l.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil || !bytes.Equal(data, []byte("{}")) {
		t.Fatalf("snapshot = %q, %v", data, err)
	}
}

func TestTermPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.term")
	if term, err := LoadTerm(path); err != nil || term != 0 {
		t.Fatalf("missing term file = %d, %v; want 0, nil", term, err)
	}
	if err := SaveTerm(path, 42); err != nil {
		t.Fatal(err)
	}
	if term, err := LoadTerm(path); err != nil || term != 42 {
		t.Fatalf("reloaded term = %d, %v; want 42", term, err)
	}
}

func TestSwitchableJournal(t *testing.T) {
	var sj SwitchableJournal
	err := sj.Append(store.Event{Kind: store.EventCancel, TaskID: 1})
	if !errors.Is(err, ErrNotWritable) {
		t.Fatalf("append before Set = %v, want ErrNotWritable", err)
	}
	var buf bytes.Buffer
	wal := store.NewWAL(&buf)
	defer wal.Close()
	sj.Set(wal)
	e := submitEvent(t, 1)
	if err := sj.Append(e); err != nil {
		t.Fatalf("append after Set = %v", err)
	}
	if wal.LastSeq() != 1 {
		t.Fatalf("record did not reach the WAL")
	}
}

func TestFollowerSurvivesLeaderRestartOfStream(t *testing.T) {
	// Kill the leader's HTTP server mid-tail and bring up a new one on the
	// same source; the follower reconnects and resumes from applied+1.
	l := newLeader(t, DefaultTailSize)
	if err := l.wal.Append(submitEvent(t, 1)); err != nil {
		t.Fatal(err)
	}

	rec := &applyRecorder{}
	// httptest can't restart a server on the same address, so the follower
	// points at a tiny streaming proxy whose target we swap mid-test.
	var leaderURL string
	var mu sync.Mutex
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		target := leaderURL
		mu.Unlock()
		resp, err := http.Get(target + r.URL.Path + "?" + r.URL.RawQuery)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		fl, _ := w.(http.Flusher)
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				if fl != nil {
					fl.Flush()
				}
			}
			if rerr != nil {
				return
			}
		}
	}))
	defer proxy.Close()
	mu.Lock()
	leaderURL = l.srv.URL
	mu.Unlock()
	f2 := NewFollower(FollowerOptions{Leader: proxy.URL, Term: 1, Apply: rec.apply})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f2.Run(ctx)
	waitFor(t, 5*time.Second, func() bool { return f2.Applied() >= 1 })

	// "Restart" the stream server: bring up a second server on the same
	// source, point the proxy at it, and cut every connection to the old
	// one mid-stream. (The old server is not fully Closed here — that
	// would block on any stream the reconnect loop races onto it.)
	srv2 := httptest.NewServer(l.src.Handler(nil))
	mu.Lock()
	leaderURL = srv2.URL
	mu.Unlock()
	l.srv.CloseClientConnections()

	if err := l.wal.Append(submitEvent(t, 2)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return f2.Applied() >= 2 })
	seqs := rec.appliedSeqs()
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("applied = %v, want [1 2] with no duplicates", seqs)
	}

	// Teardown in dependency order: stop the follower, end every stream by
	// closing the source, then the servers can drain.
	cancel()
	l.src.Close()
	srv2.Close()
}
