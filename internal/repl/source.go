package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"

	"humancomp/internal/store"
)

// DefaultTailSize is the default number of recent WAL frames a Source
// keeps in memory for streaming. Followers lagging further than this are
// served from the WAL file on disk until they re-enter the window.
const DefaultTailSize = 4096

// SourceOptions configures a replication Source.
type SourceOptions struct {
	// Term is the node's current epoch, stamped on every stream header.
	Term int64
	// WALPath, when set, is the on-disk WAL this source shadows; frames
	// older than the in-memory tail are re-read from it.
	WALPath string
	// Snapshot supplies the bootstrap snapshot served on
	// /v1/repl/snapshot — the state at sequence 0 of the current WAL.
	Snapshot func() (io.ReadCloser, error)
	// TailSize bounds the in-memory frame tail; 0 selects DefaultTailSize.
	TailSize int
}

// SnapshotFile adapts a snapshot path on disk to SourceOptions.Snapshot.
func SnapshotFile(path string) func() (io.ReadCloser, error) {
	return func() (io.ReadCloser, error) { return os.Open(path) }
}

// SnapshotBytes adapts an in-memory snapshot to SourceOptions.Snapshot.
func SnapshotBytes(b []byte) func() (io.ReadCloser, error) {
	return func() (io.ReadCloser, error) {
		return io.NopCloser(newBytesReader(b)), nil
	}
}

type bytesReader struct {
	b []byte
	i int
}

func newBytesReader(b []byte) *bytesReader { return &bytesReader{b: b} }

func (r *bytesReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// Source is the sending half of WAL shipping: it shadows a node's WAL via
// the store.WALOptions.OnRecord tap, keeps a bounded in-memory tail of
// framed records, and serves them to followers over chunked HTTP. Any node
// can run one — followers included, so a promoted follower's own followers
// (or fresh ones) can attach without a restart.
type Source struct {
	mu       sync.Mutex
	cond     *sync.Cond
	term     int64
	frames   [][]byte // frames[i] holds sequence firstSeq+i
	firstSeq int64    // sequence of frames[0]; meaningful when len(frames)>0
	lastSeq  int64
	tailSize int
	closed   bool

	walPath  string
	snapshot func() (io.ReadCloser, error)
}

// NewSource returns a Source at sequence 0 of the current WAL. Install its
// OnRecord method as the WAL's record tap.
func NewSource(opts SourceOptions) *Source {
	s := &Source{
		term:     opts.Term,
		tailSize: opts.TailSize,
		walPath:  opts.WALPath,
		snapshot: opts.Snapshot,
	}
	if s.tailSize <= 0 {
		s.tailSize = DefaultTailSize
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// OnRecord feeds one flushed WAL frame into the tail. It matches
// store.WALOptions.OnRecord and is called with the WAL's append lock held,
// so it only moves pointers and wakes waiters.
func (s *Source) OnRecord(seq int64, frame []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || seq != s.lastSeq+1 {
		// Out-of-order feed would corrupt the window; the WAL tap is
		// strictly ordered, so this only trips if a tap outlives a Reset.
		return
	}
	if len(s.frames) == 0 {
		s.firstSeq = seq
	}
	s.frames = append(s.frames, frame)
	s.lastSeq = seq
	if len(s.frames) > s.tailSize {
		drop := len(s.frames) - s.tailSize
		// Copy to release the dropped frames' backing memory instead of
		// pinning it under a re-sliced prefix.
		kept := make([][]byte, s.tailSize)
		copy(kept, s.frames[drop:])
		s.frames = kept
		s.firstSeq += int64(drop)
	}
	s.cond.Broadcast()
}

// Term returns the node's current epoch.
func (s *Source) Term() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.term
}

// SetTerm raises the epoch stamped on new stream headers (promotion).
// In-flight streams keep their old header; consumers re-learn the term on
// reconnect.
func (s *Source) SetTerm(term int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if term > s.term {
		s.term = term
	}
}

// LastSeq returns the newest sequence the source has seen.
func (s *Source) LastSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// Close wakes and ends every in-flight stream.
func (s *Source) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Handler returns the /v1/repl/* routes. promote, when non-nil, is mounted
// as POST /v1/repl/promote (the serving node decides what promotion
// means); on a leader pass nil and the route 404s.
func (s *Source) Handler(promote http.HandlerFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/wal", s.handleWAL)
	mux.HandleFunc("/v1/repl/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/repl/status", s.handleStatus)
	if promote != nil {
		mux.HandleFunc("/v1/repl/promote", promote)
	}
	return mux
}

func (s *Source) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := Status{Term: s.term, LastSeq: s.lastSeq}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (s *Source) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapshot == nil {
		http.Error(w, "no snapshot configured", http.StatusNotFound)
		return
	}
	rc, err := s.snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, rc)
}

// handleWAL streams frames from the requested cursor: a JSON header line,
// then raw v2 record frames, flushed per record, blocking while caught up
// until the client goes away or the source closes.
func (s *Source) handleWAL(w http.ResponseWriter, r *http.Request) {
	from := int64(1)
	if q := r.URL.Query().Get("from"); q != "" {
		if _, err := fmt.Sscan(q, &from); err != nil || from < 1 {
			http.Error(w, "bad from cursor", http.StatusBadRequest)
			return
		}
	}
	s.mu.Lock()
	hdr := StreamHeader{Term: s.term, From: from, LastSeq: s.lastSeq}
	s.mu.Unlock()
	if hdr.LastSeq < from-1 {
		// The consumer is ahead of this log: its cursor comes from a
		// different WAL epoch (e.g. a restarted leader with a fresh log).
		// It must re-bootstrap from the snapshot, not resume.
		http.Error(w, "cursor beyond log end; re-bootstrap from snapshot", http.StatusConflict)
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Repl-Term", fmt.Sprint(hdr.Term))
	flusher, _ := w.(http.Flusher)
	if err := writeJSONLine(w, hdr); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}

	// Wake the wait loop when the client disconnects.
	ctx := r.Context()
	stopWatch := context.AfterFunc(ctx, func() { s.cond.Broadcast() })
	defer stopWatch()

	cur := from
	for {
		frame, ok, err := s.next(ctx, cur)
		if err != nil || !ok {
			return
		}
		if frame == nil {
			// Evicted from the tail: catch up from the file, then re-enter
			// the window.
			reached, err := s.streamFile(w, flusher, cur)
			if err != nil || reached < cur {
				return // damaged file or no progress; client retries
			}
			cur = reached + 1
			continue
		}
		if _, err := w.Write(frame); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		cur++
	}
}

// next blocks until sequence cur is available. It returns (frame, true) on
// a tail hit, (nil, true) when cur has been evicted (file fallback), and
// ok=false when the stream should end.
func (s *Source) next(ctx context.Context, cur int64) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		if s.closed {
			return nil, false, nil
		}
		if cur <= s.lastSeq {
			if len(s.frames) > 0 && cur >= s.firstSeq {
				return s.frames[cur-s.firstSeq], true, nil
			}
			if s.walPath == "" {
				return nil, false, fmt.Errorf("repl: seq %d evicted and no wal file", cur)
			}
			return nil, true, nil
		}
		s.cond.Wait()
	}
}

// streamFile serves frames [cur, …] straight from the WAL file until its
// readable end, returning the last sequence written. A torn tail is normal
// (the writer may be mid-append); the caller resumes from the tail window.
func (s *Source) streamFile(w io.Writer, flusher http.Flusher, cur int64) (int64, error) {
	f, err := os.Open(s.walPath)
	if err != nil {
		return cur - 1, err
	}
	defer f.Close()
	sc := store.NewRecordScanner(f, 0)
	reached := cur - 1
	for sc.Scan() {
		if sc.Seq() < cur {
			continue
		}
		if sc.Seq() > reached+1 {
			return reached, fmt.Errorf("repl: wal file skips seq %d", reached+1)
		}
		if _, err := w.Write(sc.Frame()); err != nil {
			return reached, err
		}
		reached = sc.Seq()
	}
	if flusher != nil {
		flusher.Flush()
	}
	if err := sc.Err(); err != nil && err != store.ErrTornRecord {
		return reached, err
	}
	return reached, nil
}
