// Package rng provides a small deterministic pseudo-random number source
// and the samplers used throughout the human-computation simulator.
//
// Every stochastic component in this repository draws from an rng.Source
// seeded explicitly by the caller; there is no hidden global state. Two runs
// of any experiment with the same seed produce bit-identical results, which
// is what makes the benchmark harness reproducible.
//
// The generator is xoshiro256**, seeded through splitmix64, following the
// reference construction by Blackman and Vigna. It is not cryptographically
// secure and must not be used for CAPTCHA secrets in a real deployment; the
// captcha package documents this explicitly.
package rng

import "math"

// Source is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed via splitmix64.
// Distinct seeds yield statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the generator state as if freshly constructed with New(seed).
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Split returns a new Source whose stream is independent of r's future
// output. It is used to hand child components their own generators so that
// adding draws in one component does not perturb another.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, via the Marsaglia polar method.
func (r *Source) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNorm returns a log-normally distributed float64 where the underlying
// normal has parameters mu and sigma. Session lengths in the worker model
// are log-normal: many short sessions, a heavy tail of devoted players.
func (r *Source) LogNorm(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponentially distributed float64 with the given rate
// (mean 1/rate). Used for Poisson-process inter-arrival times.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 64.
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(r.Norm(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	limit := math.Exp(-mean)
	p := 1.0
	n := -1
	for p > limit {
		p *= r.Float64()
		n++
	}
	return n
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, which
// exchanges the elements at indexes i and j (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
