package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReproducibleStreams(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws out of 100", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Reseed = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(3)
	child := r.Split()
	// The child stream must differ from the parent's continuation.
	diverged := false
	for i := 0; i < 64; i++ {
		if child.Uint64() != r.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("Split child mirrors parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / draws; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(23)
	const draws = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.Norm(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Norm mean = %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Norm stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := New(29)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Exp(4)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.25) > 0.01 {
		t.Errorf("Exp(4) mean = %v, want ~0.25", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(31)
	for _, mean := range []float64{0.5, 3, 20, 200} {
		const draws = 50000
		sum := 0
		for i := 0; i < draws; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / draws
		if math.Abs(got-mean) > 3*math.Sqrt(mean/draws)*10+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfHeadHeavierThanTail(t *testing.T) {
	r := New(41)
	z := NewZipf(r, 100, 1.0)
	const draws = 100000
	counts := make([]int, 100)
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 count %d not heavier than rank 50 count %d", counts[0], counts[50])
	}
	if counts[0] <= counts[99] {
		t.Errorf("rank 0 count %d not heavier than rank 99 count %d", counts[0], counts[99])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(43)
	z := NewZipf(r, 10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-12 {
			t.Fatalf("Prob(%d) = %v, want 0.1", i, z.Prob(i))
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	r := New(47)
	z := NewZipf(r, 37, 1.3)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(z.N()) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	r := New(53)
	c := NewCategorical(r, []float64{1, 0, 3})
	const draws = 100000
	counts := make([]int, 3)
	for i := 0; i < draws; i++ {
		counts[c.Draw()]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight outcome drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight-3 / weight-1 ratio = %v, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {-1, 2}, {math.NaN()}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCategorical(%v) did not panic", w)
				}
			}()
			NewCategorical(New(1), w)
		}()
	}
}

func TestLogNormPositive(t *testing.T) {
	r := New(59)
	for i := 0; i < 1000; i++ {
		if v := r.LogNorm(0, 1); v <= 0 {
			t.Fatalf("LogNorm returned %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 10000, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw()
	}
}
