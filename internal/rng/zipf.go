package rng

import (
	"math"
	"sort"
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^S.
// Tag popularity in image labeling is famously Zipfian: a handful of head
// tags ("dog", "sky") dominate, with a long tail of specific terms. The
// sampler precomputes the cumulative distribution and draws by binary
// search, so a draw costs O(log N).
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf returns a Zipf sampler over ranks [0, n) with exponent s >= 0.
// s == 0 degenerates to the uniform distribution. It panics if n <= 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf}
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns a rank in [0, N) with Zipfian probability (rank 0 most likely).
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// DrawWith draws a rank like Draw but consumes randomness from src,
// leaving the sampler's own source untouched. The precomputed CDF is
// immutable, so DrawWith is safe for concurrent use across sources.
func (z *Zipf) DrawWith(src *Source) int {
	u := src.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i
}

// Prob returns the probability of drawing rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Categorical samples indexes with fixed, explicitly supplied weights.
type Categorical struct {
	src *Source
	cdf []float64
}

// NewCategorical builds a sampler over len(weights) outcomes. Weights must
// be non-negative with a positive sum; it panics otherwise.
func NewCategorical(src *Source, weights []float64) *Categorical {
	if len(weights) == 0 {
		panic("rng: NewCategorical called with no weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: NewCategorical called with negative or NaN weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("rng: NewCategorical called with zero total weight")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Categorical{src: src, cdf: cdf}
}

// Draw returns an outcome index with probability proportional to its weight.
func (c *Categorical) Draw() int {
	u := c.src.Float64()
	i := sort.SearchFloat64s(c.cdf, u)
	if i >= len(c.cdf) { // guard against u landing exactly on 1.0 rounding
		i = len(c.cdf) - 1
	}
	return i
}
