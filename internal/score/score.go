// Package score implements the enjoyment machinery the GWAPs wrapped
// around their mechanisms: points per agreement, timed-round bonuses,
// streaks for consecutive successes, and leaderboards. The survey's thesis
// is that people will do enormous amounts of work if the work is fun;
// points and rankings are how the deployed games manufactured that fun,
// and ALP — the engagement metric — is what they moved.
package score

import (
	"sort"
	"sync"
	"time"
)

// Rules parameterizes scoring for one game.
type Rules struct {
	// PointsPerOutput is the base award for a successful round.
	PointsPerOutput int
	// StreakBonus is added per consecutive success, capped at StreakCap.
	StreakBonus int
	StreakCap   int
	// SpeedBonusWindow grants SpeedBonus for successes faster than the
	// window (the ESP Game's "bonus round" pressure).
	SpeedBonusWindow time.Duration
	SpeedBonus       int
}

// DefaultRules mirrors ESP-style scoring.
func DefaultRules() Rules {
	return Rules{
		PointsPerOutput:  100,
		StreakBonus:      25,
		StreakCap:        8,
		SpeedBonusWindow: 30 * time.Second,
		SpeedBonus:       50,
	}
}

// Board tracks player scores and streaks. Safe for concurrent use.
type Board struct {
	mu      sync.Mutex
	rules   Rules
	points  map[string]int64
	streaks map[string]int
	rounds  map[string]int64
}

// NewBoard returns an empty board with the given rules.
func NewBoard(rules Rules) *Board {
	if rules.PointsPerOutput <= 0 {
		panic("score: PointsPerOutput must be positive")
	}
	return &Board{
		rules:   rules,
		points:  make(map[string]int64),
		streaks: make(map[string]int),
		rounds:  make(map[string]int64),
	}
}

// RecordRound scores one round for player: success earns points plus
// streak and speed bonuses; failure resets the streak. It returns the
// points awarded.
func (b *Board) RecordRound(player string, success bool, duration time.Duration) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rounds[player]++
	if !success {
		b.streaks[player] = 0
		return 0
	}
	award := b.rules.PointsPerOutput
	streak := b.streaks[player]
	if streak > b.rules.StreakCap {
		streak = b.rules.StreakCap
	}
	award += streak * b.rules.StreakBonus
	if b.rules.SpeedBonusWindow > 0 && duration > 0 && duration <= b.rules.SpeedBonusWindow {
		award += b.rules.SpeedBonus
	}
	b.streaks[player]++
	b.points[player] += int64(award)
	return award
}

// Points returns player's total points.
func (b *Board) Points(player string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.points[player]
}

// Streak returns player's current streak.
func (b *Board) Streak(player string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.streaks[player]
}

// Rounds returns how many rounds player has been scored for.
func (b *Board) Rounds(player string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rounds[player]
}

// Entry is one leaderboard row.
type Entry struct {
	Player string
	Points int64
}

// Top returns the n highest-scoring players, ties broken by name so the
// board is stable between refreshes.
func (b *Board) Top(n int) []Entry {
	b.mu.Lock()
	entries := make([]Entry, 0, len(b.points))
	for p, pts := range b.points {
		entries = append(entries, Entry{Player: p, Points: pts})
	}
	b.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Points != entries[j].Points {
			return entries[i].Points > entries[j].Points
		}
		return entries[i].Player < entries[j].Player
	})
	if n < len(entries) {
		entries = entries[:n]
	}
	return entries
}

// Rank returns player's 1-based leaderboard position, or 0 for a player
// with no points.
func (b *Board) Rank(player string) int {
	if b.Points(player) == 0 {
		return 0
	}
	for i, e := range b.Top(1 << 30) {
		if e.Player == player {
			return i + 1
		}
	}
	return 0
}
