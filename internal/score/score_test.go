package score

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBasicScoring(t *testing.T) {
	b := NewBoard(DefaultRules())
	award := b.RecordRound("p", true, time.Minute)
	if award != 100 {
		t.Fatalf("first award = %d", award)
	}
	if b.Points("p") != 100 || b.Streak("p") != 1 || b.Rounds("p") != 1 {
		t.Fatalf("state: points=%d streak=%d rounds=%d", b.Points("p"), b.Streak("p"), b.Rounds("p"))
	}
}

func TestStreakBonusAccumulatesAndCaps(t *testing.T) {
	rules := DefaultRules()
	rules.SpeedBonusWindow = 0 // isolate streak behaviour
	b := NewBoard(rules)
	var awards []int
	for i := 0; i < 12; i++ {
		awards = append(awards, b.RecordRound("p", true, time.Minute))
	}
	if awards[0] != 100 || awards[1] != 125 || awards[2] != 150 {
		t.Fatalf("early awards = %v", awards[:3])
	}
	// After the cap (8), awards stop growing.
	if awards[11] != awards[10] || awards[11] != 100+8*25 {
		t.Fatalf("capped awards = %v", awards[8:])
	}
}

func TestFailureResetsStreak(t *testing.T) {
	rules := DefaultRules()
	rules.SpeedBonusWindow = 0
	b := NewBoard(rules)
	b.RecordRound("p", true, time.Minute)
	b.RecordRound("p", true, time.Minute)
	if got := b.RecordRound("p", false, time.Minute); got != 0 {
		t.Fatalf("failure awarded %d", got)
	}
	if b.Streak("p") != 0 {
		t.Fatal("streak not reset")
	}
	if got := b.RecordRound("p", true, time.Minute); got != 100 {
		t.Fatalf("award after reset = %d", got)
	}
}

func TestSpeedBonus(t *testing.T) {
	b := NewBoard(DefaultRules())
	if got := b.RecordRound("fast", true, 10*time.Second); got != 150 {
		t.Fatalf("fast award = %d", got)
	}
	if got := b.RecordRound("slow", true, 2*time.Minute); got != 100 {
		t.Fatalf("slow award = %d", got)
	}
	// Zero duration means "unknown": no speed bonus.
	if got := b.RecordRound("unknown", true, 0); got != 100 {
		t.Fatalf("unknown-duration award = %d", got)
	}
}

func TestLeaderboard(t *testing.T) {
	rules := DefaultRules()
	rules.SpeedBonusWindow = 0
	b := NewBoard(rules)
	for i, wins := range []int{5, 2, 9} {
		p := fmt.Sprintf("p%d", i)
		for w := 0; w < wins; w++ {
			b.RecordRound(p, true, time.Minute)
		}
	}
	top := b.Top(2)
	if len(top) != 2 || top[0].Player != "p2" || top[1].Player != "p0" {
		t.Fatalf("Top = %v", top)
	}
	if b.Rank("p2") != 1 || b.Rank("p0") != 2 || b.Rank("p1") != 3 {
		t.Fatalf("ranks: %d %d %d", b.Rank("p2"), b.Rank("p0"), b.Rank("p1"))
	}
	if b.Rank("nobody") != 0 {
		t.Fatal("unknown player has a rank")
	}
	if got := b.Top(100); len(got) != 3 {
		t.Fatalf("Top(100) = %v", got)
	}
}

func TestLeaderboardTiesStable(t *testing.T) {
	rules := DefaultRules()
	rules.SpeedBonusWindow = 0
	b := NewBoard(rules)
	b.RecordRound("zeta", true, time.Minute)
	b.RecordRound("alpha", true, time.Minute)
	top := b.Top(2)
	if top[0].Player != "alpha" {
		t.Fatalf("tie order = %v", top)
	}
}

func TestConcurrentScoring(t *testing.T) {
	b := NewBoard(DefaultRules())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := fmt.Sprintf("p%d", i%2)
			for j := 0; j < 500; j++ {
				b.RecordRound(p, j%3 != 0, time.Minute)
			}
		}(i)
	}
	wg.Wait()
	if b.Rounds("p0")+b.Rounds("p1") != 4000 {
		t.Fatalf("rounds = %d + %d", b.Rounds("p0"), b.Rounds("p1"))
	}
}

func TestNewBoardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero points rule did not panic")
		}
	}()
	NewBoard(Rules{})
}
