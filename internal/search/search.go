// Package search implements the consumer of the ESP Game's output: an
// inverted index over human-collected image labels with TF-IDF ranking.
// "Images labeled by people playing a game" only matters because those
// labels make images findable; this package closes that loop and also
// powers Phetch, the caption game whose seekers query exactly this index.
package search

import (
	"math"
	"sort"
)

// Index is an inverted index from label concepts to the items carrying
// them, with agreement counts as term frequencies.
type Index struct {
	postings map[int]map[int]int // word -> item -> weight (agreement count)
	itemLen  map[int]int         // item -> total label weight
	items    map[int]bool
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings: make(map[int]map[int]int),
		itemLen:  make(map[int]int),
		items:    make(map[int]bool),
	}
}

// Add records weight agreements on word for item. Weight must be positive.
func (ix *Index) Add(item, word, weight int) {
	if weight <= 0 {
		panic("search: weight must be positive")
	}
	m := ix.postings[word]
	if m == nil {
		m = make(map[int]int)
		ix.postings[word] = m
	}
	m[item] += weight
	ix.itemLen[item] += weight
	ix.items[item] = true
}

// Items returns the number of indexed items.
func (ix *Index) Items() int { return len(ix.items) }

// Terms returns the number of distinct indexed words.
func (ix *Index) Terms() int { return len(ix.postings) }

// Hit is one ranked search result.
type Hit struct {
	Item  int
	Score float64
}

// Search ranks items by TF-IDF over the query words and returns the top k
// hits (fewer if the index has fewer matches). Duplicate query words count
// once; unknown words are ignored.
func (ix *Index) Search(query []int, k int) []Hit {
	if k <= 0 {
		return nil
	}
	n := float64(len(ix.items))
	if n == 0 {
		return nil
	}
	seen := make(map[int]bool, len(query))
	scores := make(map[int]float64)
	for _, w := range query {
		if seen[w] {
			continue
		}
		seen[w] = true
		posting := ix.postings[w]
		if len(posting) == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(len(posting)))
		for item, weight := range posting {
			tf := float64(weight) / float64(ix.itemLen[item])
			scores[item] += tf * idf
		}
	}
	hits := make([]Hit, 0, len(scores))
	for item, s := range scores {
		hits = append(hits, Hit{Item: item, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Item < hits[j].Item
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// Rank returns the 1-based rank of target for the query, or 0 when the
// target does not match at all. It is the evaluation primitive: a good
// label set puts the right image at rank 1.
func (ix *Index) Rank(query []int, target int) int {
	hits := ix.Search(query, len(ix.items))
	for i, h := range hits {
		if h.Item == target {
			return i + 1
		}
	}
	return 0
}
