package search

import (
	"testing"

	"humancomp/internal/games/esp"
	"humancomp/internal/rng"
	"humancomp/internal/vocab"
	"humancomp/internal/worker"
)

func TestEmptyIndex(t *testing.T) {
	ix := NewIndex()
	if got := ix.Search([]int{1, 2}, 5); got != nil {
		t.Fatalf("Search on empty = %v", got)
	}
	if ix.Items() != 0 || ix.Terms() != 0 {
		t.Fatal("empty index reports contents")
	}
	if ix.Rank([]int{1}, 1) != 0 {
		t.Fatal("Rank on empty should be 0")
	}
}

func TestExactMatchRanksFirst(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, 10, 3) // item 1: strongly "10"
	ix.Add(1, 11, 1)
	ix.Add(2, 12, 3) // item 2: strongly "12"
	ix.Add(3, 10, 1) // item 3: weakly "10"
	ix.Add(3, 12, 1)

	hits := ix.Search([]int{10}, 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Item != 1 {
		t.Fatalf("top hit = %d, want item 1 (highest tf)", hits[0].Item)
	}
	if ix.Rank([]int{10}, 1) != 1 || ix.Rank([]int{10}, 3) != 2 {
		t.Fatal("Rank inconsistent with Search")
	}
	if ix.Rank([]int{10}, 2) != 0 {
		t.Fatal("non-matching target should rank 0")
	}
}

func TestRareTermsWeighMore(t *testing.T) {
	ix := NewIndex()
	// "1" appears everywhere (stopword-like); "2" only on item 7.
	for item := 0; item < 20; item++ {
		ix.Add(item, 1, 1)
	}
	ix.Add(7, 2, 1)
	hits := ix.Search([]int{1, 2}, 1)
	if len(hits) == 0 || hits[0].Item != 7 {
		t.Fatalf("top hit = %v, want the item with the rare term", hits)
	}
}

func TestDuplicateQueryWordsCountOnce(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, 5, 1)
	ix.Add(2, 6, 1)
	a := ix.Search([]int{5}, 5)
	b := ix.Search([]int{5, 5, 5}, 5)
	if len(a) != len(b) || a[0].Score != b[0].Score {
		t.Fatal("duplicate query words changed scoring")
	}
}

func TestKLimitsAndOrdering(t *testing.T) {
	ix := NewIndex()
	for item := 0; item < 10; item++ {
		ix.Add(item, 1, item+1)
		ix.Add(item, item+100, 1) // unique term each, varies itemLen
	}
	hits := ix.Search([]int{1}, 3)
	if len(hits) != 3 {
		t.Fatalf("k not honored: %d hits", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted by score")
		}
	}
	if ix.Search([]int{1}, 0) != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestAddPanicsOnBadWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add weight 0 did not panic")
		}
	}()
	NewIndex().Add(1, 1, 0)
}

// TestESPLabelsMakeImagesFindable is the closing-the-loop integration test:
// labels collected by simulated ESP play must put the right image at or
// near the top when queried with its own ground-truth tags.
func TestESPLabelsMakeImagesFindable(t *testing.T) {
	corpus := vocab.NewCorpus(vocab.CorpusConfig{
		Lexicon:     vocab.LexiconConfig{Size: 500, ZipfS: 1, SynonymRate: 0.2, Seed: 1},
		NumImages:   150,
		MeanObjects: 4,
		CanvasW:     640, CanvasH: 480,
		Seed: 2,
	})
	cfg := esp.DefaultConfig()
	cfg.PromoteAfter = 1 << 30
	cfg.RetireAt = 0
	g := esp.New(corpus, cfg)
	src := rng.New(3)
	popCfg := worker.DefaultPopulationConfig(2)
	for img := 0; img < len(corpus.Images); img++ {
		for r := 0; r < 8; r++ {
			pa := worker.SampleProfile(popCfg, src)
			pb := worker.SampleProfile(popCfg, src)
			pa.ThinkMean, pb.ThinkMean = 0, 0
			a := worker.New("a", worker.Honest, pa, src)
			b := worker.New("b", worker.Honest, pb, src)
			g.PlayRound(a, b, img)
		}
	}

	ix := NewIndex()
	for img := 0; img < len(corpus.Images); img++ {
		for _, l := range g.Labels.LabelsFor(img) {
			ix.Add(img, l.Word, l.Count)
		}
	}
	if ix.Items() < 100 {
		t.Fatalf("only %d images got labels", ix.Items())
	}

	top5 := 0
	queries := 0
	for img := 0; img < len(corpus.Images); img++ {
		objs := corpus.Image(img).Objects
		query := make([]int, 0, len(objs))
		for _, o := range objs {
			query = append(query, corpus.Lexicon.Canonical(o.Tag))
		}
		queries++
		if r := ix.Rank(query, img); r >= 1 && r <= 5 {
			top5++
		}
	}
	if frac := float64(top5) / float64(queries); frac < 0.5 {
		t.Errorf("only %.0f%% of images found in top-5 by their own tags", 100*frac)
	}
}

func BenchmarkSearch(b *testing.B) {
	ix := NewIndex()
	src := rng.New(4)
	for item := 0; item < 5000; item++ {
		for k := 0; k < 5; k++ {
			ix.Add(item, src.Intn(2000), 1+src.Intn(3))
		}
	}
	query := []int{5, 17, 123}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(query, 10)
	}
}

// TestSearchProperties: scores are positive and adding weight to a term on
// an item never worsens that item's rank for the term.
func TestSearchProperties(t *testing.T) {
	src := rng.New(11)
	for trial := 0; trial < 100; trial++ {
		ix := NewIndex()
		nItems := 3 + src.Intn(20)
		for item := 0; item < nItems; item++ {
			for k := 0; k < 1+src.Intn(4); k++ {
				ix.Add(item, src.Intn(30), 1+src.Intn(3))
			}
		}
		term := src.Intn(30)
		target := src.Intn(nItems)
		before := ix.Rank([]int{term}, target)
		for _, h := range ix.Search([]int{term}, nItems) {
			if h.Score <= 0 {
				t.Fatalf("non-positive score %v", h.Score)
			}
		}
		ix.Add(target, term, 5)
		after := ix.Rank([]int{term}, target)
		if after == 0 {
			t.Fatal("target unranked after direct Add")
		}
		if before != 0 && after > before {
			t.Fatalf("adding term weight worsened rank: %d -> %d", before, after)
		}
	}
}
