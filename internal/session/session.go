// Package session is the live session plane for paired GWAPs: it turns
// the in-process two-player machinery (match.Matchmaker, match.ReplayStore,
// agree.OutputRound, agree.TabooTracker) into a server-side real-time
// service the dispatch layer exposes over HTTP.
//
// The life of a session:
//
//	join ──► matchmaker ──paired──► live session (two strangers)
//	            │
//	            └─no partner within MatchTimeout──► replay session
//	               (pre-recorded partner from the replay store, per the
//	                paper; ErrNoPartner when no transcript exists yet)
//
// A session is one timed ESP output-agreement round: players submit
// guesses, the round matches them server-side, taboo promotions from
// concurrent games on the same item land mid-round, and the round ends on
// agreement, double pass, guess exhaustion, a player leaving, or the
// monotonic round deadline. Completed live games are recorded into the
// replay store (feeding future lone players) and reported through
// Config.OnResult, which the dispatch bridge turns into answers on the
// quality plane.
//
// Partner events are delivered by long-polling Events with a cursor. In
// the ESP tradition a partner's guess content is hidden — the event says
// a guess happened, not what it was — so the event stream cannot be used
// to copy the partner; only the agreed word is revealed.
//
// Per-session state lives in power-of-two lock shards keyed by session ID
// (the core's shard discipline): every mutation takes exactly one shard
// lock, and cross-session work (taboo propagation, sweeping) never holds
// two shard locks at once.
package session

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"humancomp/internal/agree"
	"humancomp/internal/match"
	"humancomp/internal/metrics"
	"humancomp/internal/rng"
	"humancomp/internal/vocab"
)

// Errors returned by plane operations.
var (
	ErrClosed    = errors.New("session: plane closed")
	ErrUnknown   = errors.New("session: unknown session")
	ErrNotPlayer = errors.New("session: player not part of this session")
	ErrEnded     = errors.New("session: round already ended")
	ErrNoPartner = errors.New("session: no partner arrived and no replay transcript is available")
	ErrNoPlayer  = errors.New("session: player id required")
	ErrBadWord   = errors.New("session: word outside the lexicon")
)

// ID identifies one session.
type ID uint64

// Mode distinguishes live two-player sessions from replayed ones.
type Mode int

const (
	// Live pairs two concurrent strangers.
	Live Mode = iota
	// Replay pairs a lone player with a pre-recorded transcript.
	Replay
)

// String returns "live" or "replay".
func (m Mode) String() string {
	if m == Replay {
		return "replay"
	}
	return "live"
}

// Event types delivered on the per-session stream.
const (
	// EvStart opens every stream: the session exists and the round runs.
	EvStart = "start"
	// EvPartnerGuess says the seat entered an accepted guess. The word is
	// deliberately omitted: ESP partners cannot see each other's guesses.
	EvPartnerGuess = "partner_guess"
	// EvAgreed reveals the agreed word; the round is over.
	EvAgreed = "agreed"
	// EvTaboo carries words promoted to taboo mid-round by concurrent
	// agreements on the same item.
	EvTaboo = "taboo"
	// EvPass says the seat gave up on the round.
	EvPass = "pass"
	// EvPartnerDone says a replayed partner's transcript is exhausted.
	EvPartnerDone = "partner_done"
	// EvEnd closes every stream, with the reason the round ended.
	EvEnd = "end"
)

// Round-end reasons carried by EvEnd and Result.Reason.
const (
	EndAgreed    = "agreed"
	EndPassed    = "passed"
	EndTimeout   = "timeout"
	EndLeft      = "partner_left"
	EndExhausted = "exhausted"
)

// Event is one entry on a session's ordered stream. Seq starts at 1 and
// is dense; a client resumes with the last Seq it saw as the cursor.
type Event struct {
	Seq    int    `json:"seq"`
	Type   string `json:"type"`
	Seat   int    `json:"seat"` // acting seat; -1 for system events
	Word   int    `json:"word,omitempty"`
	Words  []int  `json:"words,omitempty"`
	Reason string `json:"reason,omitempty"`
	AtMs   int64  `json:"at_ms"` // milliseconds since session start
}

// Result is one finished session, delivered to Config.OnResult outside
// all plane locks.
type Result struct {
	Session  ID
	Item     int
	Mode     Mode
	Players  [2]string // seat 1 is "replay:<name>" in replay mode
	Agreed   bool
	Word     int // the agreed word; -1 when !Agreed
	Reason   string
	Duration time.Duration
}

// JoinInfo is what a player learns when their session starts.
type JoinInfo struct {
	Session  ID            `json:"session"`
	Seat     int           `json:"seat"`
	Mode     string        `json:"mode"`
	Item     int           `json:"item"`
	Taboo    []int         `json:"taboo,omitempty"`
	Deadline time.Duration `json:"deadline"` // time left on the round clock
	Wait     time.Duration `json:"wait"`     // time spent matchmaking
}

// GuessResult is the outcome of one guess submission.
type GuessResult struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"` // "taboo" | "repeat" | "limit"
	Matched  bool   `json:"matched"`
	Word     int    `json:"word,omitempty"` // agreed word when Matched
	Guesses  int    `json:"guesses"`        // caller's accepted guesses so far
	Done     bool   `json:"done"`
}

// Config parameterizes a Plane. The zero value of every field except
// Lexicon and NextItem is usable.
type Config struct {
	// Shards is the number of session shards, rounded up to a power of
	// two; <= 0 selects GOMAXPROCS rounded up, capped at 64.
	Shards int
	// MatchTimeout is how long Join waits for a live partner before
	// falling back to replay mode. Default 2s.
	MatchTimeout time.Duration
	// RoundTimeout is the round clock; deadlines are monotonic (Go's
	// time.Time carries a monotonic reading). Default 60s.
	RoundTimeout time.Duration
	// EndLinger keeps finished sessions queryable so both players can
	// collect the final events before the sweeper frees the state.
	// Default 10s.
	EndLinger time.Duration
	// SweepEvery is the sweeper cadence for round timeouts and linger
	// expiry. Default 250ms.
	SweepEvery time.Duration
	// MaxGuesses bounds accepted guesses per seat per round. Default 12.
	MaxGuesses int
	// Match selects exact or canonical word matching.
	Match agree.MatchMode
	// PromoteAfter is the agreement count that promotes a word to taboo
	// for its item (default 2); RetireAt retires an item once it has that
	// many taboo words (default 6, 0 disables).
	PromoteAfter int
	RetireAt     int
	// ReplayPerItem bounds stored transcripts per item (reservoir
	// sampled). Default 8.
	ReplayPerItem int
	// MaxRepeats bounds how often the same two players may be paired; 0
	// means unlimited.
	MaxRepeats int
	// Seed fixes the matchmaker and replay-store randomness.
	Seed uint64
	// Lexicon canonicalizes words for matching and taboo. Required.
	Lexicon *vocab.Lexicon
	// NextItem supplies the item a fresh live pairing plays on. Required.
	NextItem func() int
	// OnResult receives every finished session, outside all plane locks.
	// Optional.
	OnResult func(Result)
	// Now overrides the clock; tests use it. Default time.Now.
	Now func() time.Time
}

// session is one open or lingering round. All fields are guarded by the
// owning shard's lock; the notify channel is replaced (old one closed)
// each time events grows, which is the long-poll broadcast.
type session struct {
	id       ID
	mode     Mode
	item     int
	players  [2]string
	round    *agree.OutputRound
	replayer *match.Replayer
	start    time.Time
	deadline time.Time
	endedAt  time.Time
	events   []Event
	notify   chan struct{}
	guesses  [2]int
	passed   [2]bool
	replayed bool // EvPartnerDone already emitted
	done     bool
	reason   string
}

func (s *session) seatOf(player string) int {
	switch player {
	case s.players[0]:
		return 0
	case s.players[1]:
		return 1
	}
	return -1
}

// shard is one independently locked slice of the session table.
type shard struct {
	mu   sync.Mutex
	sess map[ID]*session
}

// waiter is a player blocked in Join waiting for a partner.
type waiter struct {
	ch    chan JoinInfo
	since time.Time
}

// Plane is the live session manager. Safe for concurrent use.
type Plane struct {
	cfg    Config
	shards []*shard
	mask   uint64
	nextID atomic.Uint64

	mm      *match.Matchmaker
	replays *match.ReplayStore

	tabooMu sync.Mutex
	taboo   *agree.TabooTracker

	itemMu sync.Mutex
	byItem map[int]map[ID]struct{} // open sessions per item, for taboo propagation

	joinMu  sync.Mutex
	waiters map[string]*waiter

	stop    chan struct{}
	stopped sync.WaitGroup
	closed  atomic.Bool

	// Counters behind Stats and the admin /metrics families.
	open       atomic.Int64
	liveTotal  atomic.Int64
	replTotal  atomic.Int64
	agreements atomic.Int64
	timeouts   atomic.Int64
	passes     atomic.Int64
	abandons   atomic.Int64
	exhausted  atomic.Int64
	noPartner  atomic.Int64
	promotions atomic.Int64
	matchWait  metrics.LatencyHist
}

// New returns a running Plane; callers must Close it to stop the sweeper.
func New(cfg Config) (*Plane, error) {
	if cfg.Lexicon == nil {
		return nil, errors.New("session: Config.Lexicon is required")
	}
	if cfg.NextItem == nil {
		return nil, errors.New("session: Config.NextItem is required")
	}
	if cfg.MatchTimeout <= 0 {
		cfg.MatchTimeout = 2 * time.Second
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 60 * time.Second
	}
	if cfg.EndLinger <= 0 {
		cfg.EndLinger = 10 * time.Second
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = 250 * time.Millisecond
	}
	if cfg.MaxGuesses <= 0 {
		cfg.MaxGuesses = 12
	}
	if cfg.PromoteAfter <= 0 {
		cfg.PromoteAfter = 2
	}
	if cfg.RetireAt < 0 {
		cfg.RetireAt = 0
	} else if cfg.RetireAt == 0 {
		cfg.RetireAt = 6
	}
	if cfg.ReplayPerItem <= 0 {
		cfg.ReplayPerItem = 8
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 64 {
			n = 64
		}
	}
	p := 1
	for p < n {
		p <<= 1
	}
	src := rng.New(cfg.Seed + 1)
	pl := &Plane{
		cfg:     cfg,
		shards:  make([]*shard, p),
		mask:    uint64(p - 1),
		mm:      match.NewMatchmaker(src),
		replays: match.NewReplayStore(src, cfg.ReplayPerItem),
		taboo:   agree.NewTabooTracker(cfg.Lexicon, cfg.PromoteAfter, cfg.RetireAt),
		byItem:  make(map[int]map[ID]struct{}),
		waiters: make(map[string]*waiter),
		stop:    make(chan struct{}),
	}
	pl.mm.MaxRepeats = cfg.MaxRepeats
	pl.mm.SetNow(cfg.Now)
	for i := range pl.shards {
		pl.shards[i] = &shard{sess: make(map[ID]*session)}
	}
	pl.stopped.Add(1)
	go pl.sweep()
	return pl, nil
}

// Close stops the sweeper. Open sessions stay readable but no longer time
// out; the dispatch server closes its listener first, so nothing arrives
// after Close in practice.
func (p *Plane) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.stop)
		p.stopped.Wait()
	}
}

// Replays exposes the replay store, so servers can pre-seed transcripts
// (e.g. from a previous process's recordings) before traffic arrives.
func (p *Plane) Replays() *match.ReplayStore { return p.replays }

func (p *Plane) now() time.Time        { return p.cfg.Now() }
func (p *Plane) shardFor(id ID) *shard { return p.shards[uint64(id)&p.mask] }

func (p *Plane) tabooFor(item int) []int {
	p.tabooMu.Lock()
	defer p.tabooMu.Unlock()
	return p.taboo.TabooFor(item)
}

// Join enters player into the matchmaker and blocks until a session
// starts: paired with a live stranger, or — when no partner arrives
// within MatchTimeout — against a replayed transcript. ErrNoPartner means
// the deadline passed and the replay store is empty; the caller should
// retry later. Cancelling ctx withdraws the player cleanly.
func (p *Plane) Join(ctx context.Context, player string) (JoinInfo, error) {
	if player == "" {
		return JoinInfo{}, ErrNoPlayer
	}
	if p.closed.Load() {
		return JoinInfo{}, ErrClosed
	}
	joinStart := p.now()
	p.joinMu.Lock()
	partner, ok, err := p.mm.Enqueue(player)
	if err != nil {
		p.joinMu.Unlock()
		return JoinInfo{}, err
	}
	if ok {
		// This player is the later arrival: start the live session and
		// hand the blocked partner their seat. The send happens before
		// the waiter entry is deleted and the channel is buffered, so
		// the timeout path below can always drain it after losing the
		// race.
		infoA, infoB := p.startLive(partner, player)
		if w := p.waiters[partner]; w != nil {
			infoA.Wait = p.now().Sub(w.since)
			p.matchWait.Observe(infoA.Wait)
			w.ch <- infoA
			delete(p.waiters, partner)
		}
		p.joinMu.Unlock()
		p.matchWait.Observe(p.now().Sub(joinStart))
		return infoB, nil
	}
	w := &waiter{ch: make(chan JoinInfo, 1), since: joinStart}
	p.waiters[player] = w
	p.joinMu.Unlock()

	timer := time.NewTimer(p.cfg.MatchTimeout)
	defer timer.Stop()
	select {
	case info := <-w.ch:
		return info, nil
	case <-timer.C:
	case <-ctx.Done():
	}
	// Timed out (or cancelled): withdraw, racing a concurrent pairing.
	p.joinMu.Lock()
	if _, stillWaiting := p.waiters[player]; !stillWaiting {
		// A pairing won the race; the JoinInfo is already buffered.
		p.joinMu.Unlock()
		return <-w.ch, nil
	}
	delete(p.waiters, player)
	p.mm.Leave(player)
	p.joinMu.Unlock()
	if err := ctx.Err(); err != nil {
		return JoinInfo{}, err
	}
	// Replay fallback: the paper's pre-recorded partner.
	rs, found := p.replays.Any()
	if !found {
		p.noPartner.Add(1)
		return JoinInfo{}, ErrNoPartner
	}
	p.matchWait.Observe(p.now().Sub(joinStart))
	info := p.startReplay(player, rs)
	info.Wait = p.now().Sub(joinStart)
	return info, nil
}

// startLive creates a live session for seats (a, b) and returns their
// JoinInfos. Called with joinMu held (session creation itself takes only
// the owning shard lock).
func (p *Plane) startLive(a, b string) (JoinInfo, JoinInfo) {
	item := p.cfg.NextItem()
	s := p.startSession(Live, item, [2]string{a, b}, nil)
	p.liveTotal.Add(1)
	return p.joinInfo(s, 0), p.joinInfo(s, 1)
}

// startReplay creates a replay session for player against transcript rs.
func (p *Plane) startReplay(player string, rs match.ReplaySession) JoinInfo {
	s := p.startSession(Replay, rs.Item, [2]string{player, "replay:" + rs.Player}, match.NewReplayer(rs))
	p.replTotal.Add(1)
	return p.joinInfo(s, 0)
}

func (p *Plane) startSession(mode Mode, item int, players [2]string, rep *match.Replayer) *session {
	now := p.now()
	s := &session{
		id:       ID(p.nextID.Add(1)),
		mode:     mode,
		item:     item,
		players:  players,
		round:    agree.NewOutputRound(p.cfg.Lexicon, p.cfg.Match, p.tabooFor(item)),
		replayer: rep,
		start:    now,
		deadline: now.Add(p.cfg.RoundTimeout),
		notify:   make(chan struct{}),
	}
	sh := p.shardFor(s.id)
	sh.mu.Lock()
	sh.sess[s.id] = s
	p.appendEventLocked(s, Event{Type: EvStart, Seat: -1})
	sh.mu.Unlock()
	p.itemMu.Lock()
	set := p.byItem[item]
	if set == nil {
		set = make(map[ID]struct{})
		p.byItem[item] = set
	}
	set[s.id] = struct{}{}
	p.itemMu.Unlock()
	p.open.Add(1)
	return s
}

func (p *Plane) joinInfo(s *session, seat int) JoinInfo {
	return JoinInfo{
		Session:  s.id,
		Seat:     seat,
		Mode:     s.mode.String(),
		Item:     s.item,
		Taboo:    s.round.Taboo(),
		Deadline: s.deadline.Sub(p.now()),
	}
}

// appendEventLocked stamps and appends ev, waking every long-poller.
// Caller holds the owning shard's lock.
func (p *Plane) appendEventLocked(s *session, ev Event) {
	ev.Seq = len(s.events) + 1
	ev.AtMs = p.now().Sub(s.start).Milliseconds()
	s.events = append(s.events, ev)
	close(s.notify)
	s.notify = make(chan struct{})
}

// finish holds the cross-session work a round end defers until after the
// shard lock is released: the OnResult callback, transcript recording,
// and taboo promotion/propagation.
type finish struct {
	res         Result
	transcripts []match.ReplaySession
}

// endLocked closes the round. Caller holds the shard lock and runs the
// returned finish via p.finalize after releasing it.
func (p *Plane) endLocked(s *session, reason string) finish {
	s.done = true
	s.reason = reason
	s.endedAt = p.now()
	word, agreed := s.round.Agreed()
	if agreed {
		p.appendEventLocked(s, Event{Type: EvAgreed, Seat: -1, Word: word})
		p.agreements.Add(1)
	} else {
		word = -1
	}
	p.appendEventLocked(s, Event{Type: EvEnd, Seat: -1, Reason: reason})
	p.open.Add(-1)
	switch reason {
	case EndTimeout:
		p.timeouts.Add(1)
	case EndPassed:
		p.passes.Add(1)
	case EndLeft:
		p.abandons.Add(1)
	case EndExhausted:
		p.exhausted.Add(1)
	}
	f := finish{res: Result{
		Session:  s.id,
		Item:     s.item,
		Mode:     s.mode,
		Players:  s.players,
		Agreed:   agreed,
		Word:     word,
		Reason:   reason,
		Duration: s.endedAt.Sub(s.start),
	}}
	// Record live transcripts (both seats) so future lone players have
	// partners; in replay mode only the live seat adds fresh material.
	seats := 2
	if s.mode == Replay {
		seats = 1
	}
	for seat := 0; seat < seats; seat++ {
		if g := s.round.Guesses(seat); len(g) > 0 {
			words := make([]int, len(g))
			copy(words, g)
			f.transcripts = append(f.transcripts, match.ReplaySession{
				Item: s.item, Player: s.players[seat], Words: words,
			})
		}
	}
	return f
}

// finalize runs a round's deferred work outside all shard locks.
func (p *Plane) finalize(f finish) {
	for _, tr := range f.transcripts {
		p.replays.Record(tr)
	}
	if f.res.Agreed {
		p.tabooMu.Lock()
		promoted := p.taboo.Record(f.res.Item, f.res.Word)
		p.tabooMu.Unlock()
		if promoted {
			p.promotions.Add(1)
			p.propagateTaboo(f.res.Item, f.res.Word, f.res.Session)
		}
	}
	if p.cfg.OnResult != nil {
		p.cfg.OnResult(f.res)
	}
}

// propagateTaboo pushes a freshly promoted taboo word into every other
// open session on the same item, mid-game. Session IDs are snapshotted
// under itemMu, then each session is updated under its own shard lock —
// never two locks at once.
func (p *Plane) propagateTaboo(item, word int, from ID) {
	p.itemMu.Lock()
	ids := make([]ID, 0, len(p.byItem[item]))
	for id := range p.byItem[item] {
		if id != from {
			ids = append(ids, id)
		}
	}
	p.itemMu.Unlock()
	for _, id := range ids {
		sh := p.shardFor(id)
		sh.mu.Lock()
		if s := sh.sess[id]; s != nil && !s.done {
			s.round.AddTaboo(word)
			p.appendEventLocked(s, Event{Type: EvTaboo, Seat: -1, Words: []int{word}})
		}
		sh.mu.Unlock()
	}
}

// Guess submits one guess for player. Taboo words, repeats, and guesses
// past MaxGuesses are rejected in-band (Accepted=false with a reason), as
// the real game's UI would; unknown sessions, non-players, and finished
// rounds are errors.
func (p *Plane) Guess(id ID, player string, word int) (GuessResult, error) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	s := sh.sess[id]
	if s == nil {
		sh.mu.Unlock()
		return GuessResult{}, ErrUnknown
	}
	seat := s.seatOf(player)
	if seat < 0 {
		sh.mu.Unlock()
		return GuessResult{}, ErrNotPlayer
	}
	if s.done {
		sh.mu.Unlock()
		return GuessResult{Done: true}, ErrEnded
	}
	if word < 0 || word >= p.cfg.Lexicon.Size() {
		// Guard the lexicon lookup: word IDs come straight off the wire,
		// and Canonical indexes by ID without a bounds check.
		sh.mu.Unlock()
		return GuessResult{}, ErrBadWord
	}
	if s.guesses[seat] >= p.cfg.MaxGuesses {
		res := GuessResult{Reason: "limit", Guesses: s.guesses[seat]}
		sh.mu.Unlock()
		return res, nil
	}
	matched, err := s.round.Submit(seat, word)
	switch {
	case errors.Is(err, agree.ErrTabooWord):
		res := GuessResult{Reason: "taboo", Guesses: s.guesses[seat]}
		sh.mu.Unlock()
		return res, nil
	case errors.Is(err, agree.ErrRepeatWord):
		res := GuessResult{Reason: "repeat", Guesses: s.guesses[seat]}
		sh.mu.Unlock()
		return res, nil
	case errors.Is(err, agree.ErrRoundOver):
		sh.mu.Unlock()
		return GuessResult{Done: true}, ErrEnded
	case err != nil:
		sh.mu.Unlock()
		return GuessResult{}, err
	}
	s.guesses[seat]++
	res := GuessResult{Accepted: true, Guesses: s.guesses[seat]}
	p.appendEventLocked(s, Event{Type: EvPartnerGuess, Seat: seat})
	if !matched && s.mode == Replay {
		matched = p.advanceReplayLocked(s)
	}
	var fin *finish
	switch {
	case matched:
		res.Matched = true
		res.Word, _ = s.round.Agreed()
		f := p.endLocked(s, EndAgreed)
		fin = &f
	case p.exhaustedLocked(s):
		f := p.endLocked(s, EndExhausted)
		fin = &f
	}
	res.Done = s.done
	sh.mu.Unlock()
	if fin != nil {
		p.finalize(*fin)
	}
	return res, nil
}

// advanceReplayLocked plays the pre-recorded partner's next usable guess
// after each accepted live guess, skipping recorded words the current
// round refuses (taboo promoted since recording, repeats). Returns true
// when the replayed guess matches. Caller holds the shard lock.
func (p *Plane) advanceReplayLocked(s *session) bool {
	for {
		w, ok := s.replayer.Next()
		if !ok {
			if !s.replayed {
				s.replayed = true
				p.appendEventLocked(s, Event{Type: EvPartnerDone, Seat: 1})
			}
			return false
		}
		matched, err := s.round.Submit(1, w)
		if err != nil {
			continue
		}
		s.guesses[1]++
		p.appendEventLocked(s, Event{Type: EvPartnerGuess, Seat: 1})
		return matched
	}
}

// exhaustedLocked reports whether nobody can guess anymore: every live
// seat is at MaxGuesses (and a replayed partner's transcript is spent).
func (p *Plane) exhaustedLocked(s *session) bool {
	if s.guesses[0] < p.cfg.MaxGuesses {
		return false
	}
	if s.mode == Replay {
		return s.replayer.Remaining() == 0
	}
	return s.guesses[1] >= p.cfg.MaxGuesses
}

// Pass records player giving up on the round. A live round ends when both
// seats pass; a replay round ends on the lone player's pass.
func (p *Plane) Pass(id ID, player string) (bool, error) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	s := sh.sess[id]
	if s == nil {
		sh.mu.Unlock()
		return false, ErrUnknown
	}
	seat := s.seatOf(player)
	if seat < 0 {
		sh.mu.Unlock()
		return false, ErrNotPlayer
	}
	if s.done {
		sh.mu.Unlock()
		return true, nil
	}
	if !s.passed[seat] {
		s.passed[seat] = true
		p.appendEventLocked(s, Event{Type: EvPass, Seat: seat})
	}
	var fin *finish
	if s.passed[0] && (s.mode == Replay || s.passed[1]) {
		f := p.endLocked(s, EndPassed)
		fin = &f
	}
	done := s.done
	sh.mu.Unlock()
	if fin != nil {
		p.finalize(*fin)
	}
	return done, nil
}

// Leave ends the session because player disconnected; the partner gets
// EvEnd with reason "partner_left". Leaving an already finished session
// is a no-op.
func (p *Plane) Leave(id ID, player string) error {
	sh := p.shardFor(id)
	sh.mu.Lock()
	s := sh.sess[id]
	if s == nil {
		sh.mu.Unlock()
		return ErrUnknown
	}
	if s.seatOf(player) < 0 {
		sh.mu.Unlock()
		return ErrNotPlayer
	}
	var fin *finish
	if !s.done {
		f := p.endLocked(s, EndLeft)
		fin = &f
	}
	sh.mu.Unlock()
	if fin != nil {
		p.finalize(*fin)
	}
	return nil
}

// Events long-polls the session's stream: it returns every event with
// Seq > after as soon as any exists, waiting up to wait otherwise. done
// reports whether the round has ended — once the caller has drained the
// stream past EvEnd, done with no events means there is nothing left.
func (p *Plane) Events(ctx context.Context, id ID, player string, after int, wait time.Duration) ([]Event, bool, error) {
	deadline := time.Now().Add(wait)
	for {
		sh := p.shardFor(id)
		sh.mu.Lock()
		s := sh.sess[id]
		if s == nil {
			sh.mu.Unlock()
			return nil, false, ErrUnknown
		}
		if s.seatOf(player) < 0 {
			sh.mu.Unlock()
			return nil, false, ErrNotPlayer
		}
		if after < 0 {
			after = 0
		}
		if len(s.events) > after {
			evs := make([]Event, len(s.events)-after)
			copy(evs, s.events[after:])
			done := s.done
			sh.mu.Unlock()
			return evs, done, nil
		}
		if s.done {
			sh.mu.Unlock()
			return nil, true, nil
		}
		ch := s.notify
		sh.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, false, nil
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return nil, false, nil
		case <-ctx.Done():
			timer.Stop()
			return nil, false, ctx.Err()
		case <-p.stop:
			// Close() must not strand parked long-polls: HTTP shutdown
			// waits for in-flight handlers, and event waits run up to
			// tens of seconds.
			timer.Stop()
			return nil, false, ErrClosed
		}
	}
}

// sweep is the background timer loop: it expires round deadlines and
// frees finished sessions once their linger has passed. One shard lock at
// a time; finalize work runs outside all locks.
func (p *Plane) sweep() {
	defer p.stopped.Done()
	ticker := time.NewTicker(p.cfg.SweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
		}
		now := p.now()
		var fins []finish
		type removal struct {
			id   ID
			item int
		}
		var removals []removal
		for _, sh := range p.shards {
			sh.mu.Lock()
			for id, s := range sh.sess {
				switch {
				case !s.done && now.After(s.deadline):
					fins = append(fins, p.endLocked(s, EndTimeout))
				case s.done && now.Sub(s.endedAt) > p.cfg.EndLinger:
					delete(sh.sess, id)
					removals = append(removals, removal{id: id, item: s.item})
				}
			}
			sh.mu.Unlock()
		}
		for _, f := range fins {
			p.finalize(f)
		}
		if len(removals) > 0 {
			p.itemMu.Lock()
			for _, rm := range removals {
				if set := p.byItem[rm.item]; set != nil {
					delete(set, rm.id)
					if len(set) == 0 {
						delete(p.byItem, rm.item)
					}
				}
			}
			p.itemMu.Unlock()
		}
	}
}

// Stats is a snapshot of the plane's gauges and counters.
type Stats struct {
	Open            int64                  `json:"open"`     // running rounds (the open-session gauge)
	Resident        int64                  `json:"resident"` // sessions in memory incl. lingering finished ones
	Waiting         int                    `json:"waiting"`  // players pooled in the matchmaker
	OldestWaitMs    int64                  `json:"oldest_wait_ms"`
	Live            int64                  `json:"live_total"`
	Replay          int64                  `json:"replay_total"`
	ReplayRatio     float64                `json:"replay_ratio"`
	Agreements      int64                  `json:"agreements"`
	Timeouts        int64                  `json:"timeouts"`
	Passes          int64                  `json:"passes"`
	Abandons        int64                  `json:"abandons"`
	Exhausted       int64                  `json:"exhausted"`
	NoPartner       int64                  `json:"no_partner"`
	TabooPromotions int64                  `json:"taboo_promotions"`
	ReplayStored    int                    `json:"replay_stored"`
	MatchWait       metrics.LatencySummary `json:"match_wait"`
}

// Stats returns a point-in-time snapshot. Resident visits every shard
// once; counters are atomics.
func (p *Plane) Stats() Stats {
	var resident int64
	for _, sh := range p.shards {
		sh.mu.Lock()
		resident += int64(len(sh.sess))
		sh.mu.Unlock()
	}
	live, repl := p.liveTotal.Load(), p.replTotal.Load()
	var ratio float64
	if live+repl > 0 {
		ratio = float64(repl) / float64(live+repl)
	}
	return Stats{
		Open:            p.open.Load(),
		Resident:        resident,
		Waiting:         p.mm.Waiting(),
		OldestWaitMs:    p.mm.OldestWait().Milliseconds(),
		Live:            live,
		Replay:          repl,
		ReplayRatio:     ratio,
		Agreements:      p.agreements.Load(),
		Timeouts:        p.timeouts.Load(),
		Passes:          p.passes.Load(),
		Abandons:        p.abandons.Load(),
		Exhausted:       p.exhausted.Load(),
		NoPartner:       p.noPartner.Load(),
		TabooPromotions: p.promotions.Load(),
		ReplayStored:    p.replays.Size(),
		MatchWait:       p.matchWait.Summary(),
	}
}

// MatchWaitHist exposes the matchmaking-latency histogram for the admin
// metrics exposition.
func (p *Plane) MatchWaitHist() *metrics.LatencyHist { return &p.matchWait }

// Shards returns the shard count the plane was built with.
func (p *Plane) Shards() int { return len(p.shards) }

// String renders an ID in the decimal form used in URLs.
func (id ID) String() string { return fmt.Sprintf("%d", uint64(id)) }
