package session

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"humancomp/internal/agree"
	"humancomp/internal/match"
	"humancomp/internal/vocab"
)

func testLexicon(t testing.TB) *vocab.Lexicon {
	t.Helper()
	// SynonymRate 0 keeps Exact matching fully deterministic.
	return vocab.NewLexicon(vocab.LexiconConfig{Size: 500, ZipfS: 1, SynonymRate: 0, Seed: 1})
}

// newPlane builds a plane with fast test timings; mutate defaults via fn.
func newPlane(t testing.TB, fn func(*Config)) *Plane {
	t.Helper()
	cfg := Config{
		MatchTimeout: 200 * time.Millisecond,
		RoundTimeout: time.Minute,
		EndLinger:    time.Minute,
		SweepEvery:   5 * time.Millisecond,
		Match:        agree.Exact,
		Lexicon:      testLexicon(t),
		NextItem:     func() int { return 7 },
		Seed:         1,
	}
	if fn != nil {
		fn(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// joinPair runs two concurrent Joins and returns both JoinInfos.
func joinPair(t *testing.T, p *Plane, a, b string) (JoinInfo, JoinInfo) {
	t.Helper()
	var infoA JoinInfo
	var errA error
	done := make(chan struct{})
	go func() {
		infoA, errA = p.Join(context.Background(), a)
		close(done)
	}()
	// Let a reach the waiter pool first so seats are deterministic.
	deadline := time.Now().Add(2 * time.Second)
	for p.mm.Waiting() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	infoB, errB := p.Join(context.Background(), b)
	<-done
	if errA != nil || errB != nil {
		t.Fatalf("join errors: %v / %v", errA, errB)
	}
	return infoA, infoB
}

func TestLivePairingAndAgreement(t *testing.T) {
	var results []Result
	var mu sync.Mutex
	p := newPlane(t, func(c *Config) {
		c.OnResult = func(r Result) { mu.Lock(); results = append(results, r); mu.Unlock() }
	})
	infoA, infoB := joinPair(t, p, "alice", "bob")
	if infoA.Session != infoB.Session {
		t.Fatalf("players landed in different sessions: %d vs %d", infoA.Session, infoB.Session)
	}
	if infoA.Seat == infoB.Seat {
		t.Fatalf("both players got seat %d", infoA.Seat)
	}
	if infoA.Mode != "live" || infoB.Mode != "live" {
		t.Fatalf("modes = %q / %q", infoA.Mode, infoB.Mode)
	}
	if infoA.Item != 7 || infoB.Item != 7 {
		t.Fatalf("items = %d / %d", infoA.Item, infoB.Item)
	}
	id := infoA.Session

	// Alice guesses 10 and 11; Bob answers 11: agreement.
	for _, w := range []int{10, 11} {
		res, err := p.Guess(id, "alice", w)
		if err != nil || !res.Accepted {
			t.Fatalf("alice guess %d: %+v err=%v", w, res, err)
		}
	}
	res, err := p.Guess(id, "bob", 11)
	if err != nil || !res.Matched || res.Word != 11 || !res.Done {
		t.Fatalf("bob's matching guess: %+v err=%v", res, err)
	}

	evs, done, err := p.Events(context.Background(), id, "alice", 0, 0)
	if err != nil || !done {
		t.Fatalf("Events: done=%v err=%v", done, err)
	}
	var types []string
	for _, ev := range evs {
		types = append(types, ev.Type)
		if ev.Type == EvPartnerGuess && ev.Word != 0 {
			t.Fatalf("partner_guess leaked the word: %+v", ev)
		}
		if ev.Type == EvAgreed && ev.Word != 11 {
			t.Fatalf("agreed event word = %d", ev.Word)
		}
	}
	want := []string{EvStart, EvPartnerGuess, EvPartnerGuess, EvPartnerGuess, EvAgreed, EvEnd}
	if len(types) != len(want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event[%d] = %q, want %q (%v)", i, types[i], want[i], types)
		}
	}
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(results) != 1 {
		t.Fatalf("OnResult fired %d times", len(results))
	}
	r := results[0]
	if !r.Agreed || r.Word != 11 || r.Mode != Live || r.Reason != EndAgreed {
		t.Fatalf("result = %+v", r)
	}
	st := p.Stats()
	if st.Open != 0 || st.Agreements != 1 || st.Live != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Both transcripts were recorded for future replay partners.
	if st.ReplayStored != 2 {
		t.Fatalf("replay store holds %d transcripts, want 2", st.ReplayStored)
	}
}

func TestReplayFallback(t *testing.T) {
	p := newPlane(t, func(c *Config) { c.MatchTimeout = 20 * time.Millisecond })
	// Empty store: a lone player has nobody at all.
	if _, err := p.Join(context.Background(), "carol"); !errors.Is(err, ErrNoPartner) {
		t.Fatalf("join with empty replay store: %v", err)
	}
	if p.Stats().NoPartner != 1 {
		t.Fatalf("NoPartner = %d", p.Stats().NoPartner)
	}
	p.Replays().Record(match.ReplaySession{Item: 3, Player: "ghost", Words: []int{40, 41}})
	info, err := p.Join(context.Background(), "carol")
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != "replay" || info.Item != 3 || info.Seat != 0 {
		t.Fatalf("replay join info = %+v", info)
	}
	// Each accepted live guess advances the recording one word; carol's
	// second guess matches the recording's first word.
	if res, err := p.Guess(info.Session, "carol", 99); err != nil || !res.Accepted || res.Matched {
		t.Fatalf("first guess: %+v err=%v", res, err)
	}
	res, err := p.Guess(info.Session, "carol", 41)
	if err != nil || !res.Matched || res.Word != 41 {
		t.Fatalf("matching guess: %+v err=%v", res, err)
	}
	st := p.Stats()
	if st.Replay != 1 || st.Agreements != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ReplayRatio != 1.0 {
		t.Fatalf("ReplayRatio = %v", st.ReplayRatio)
	}
}

func TestReplayPartnerSkipsUnusableWords(t *testing.T) {
	p := newPlane(t, func(c *Config) { c.MatchTimeout = 20 * time.Millisecond })
	// The recording opens with a word that has since become taboo; the
	// replayed partner must skip it and play the next one.
	p.Replays().Record(match.ReplaySession{Item: 3, Player: "ghost", Words: []int{50, 51}})
	info, err := p.Join(context.Background(), "dave")
	if err != nil {
		t.Fatal(err)
	}
	sh := p.shardFor(info.Session)
	sh.mu.Lock()
	sh.sess[info.Session].round.AddTaboo(50)
	sh.mu.Unlock()
	if res, err := p.Guess(info.Session, "dave", 51); err != nil || !res.Matched || res.Word != 51 {
		t.Fatalf("guess = %+v err=%v", res, err)
	}
}

func TestReplayPartnerExhaustion(t *testing.T) {
	p := newPlane(t, func(c *Config) { c.MatchTimeout = 20 * time.Millisecond })
	p.Replays().Record(match.ReplaySession{Item: 3, Player: "ghost", Words: []int{60}})
	info, err := p.Join(context.Background(), "erin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Guess(info.Session, "erin", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Guess(info.Session, "erin", 2); err != nil {
		t.Fatal(err)
	}
	evs, _, err := p.Events(context.Background(), info.Session, "erin", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sawDone := false
	for _, ev := range evs {
		if ev.Type == EvPartnerDone {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatalf("no partner_done after exhausting the transcript: %v", evs)
	}
	// The lone player's pass ends a replay round.
	done, err := p.Pass(info.Session, "erin")
	if err != nil || !done {
		t.Fatalf("pass: done=%v err=%v", done, err)
	}
	if st := p.Stats(); st.Passes != 1 || st.Open != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTabooPropagatesAcrossSessions(t *testing.T) {
	p := newPlane(t, func(c *Config) { c.PromoteAfter = 1 })
	infoA, _ := joinPair(t, p, "a1", "a2")
	infoB, _ := joinPair(t, p, "b1", "b2")
	if infoA.Session == infoB.Session {
		t.Fatal("pairs shared a session")
	}
	// Session A agrees on 20; PromoteAfter=1 promotes it immediately.
	if _, err := p.Guess(infoA.Session, "a1", 20); err != nil {
		t.Fatal(err)
	}
	if res, _ := p.Guess(infoA.Session, "a2", 20); !res.Matched {
		t.Fatal("session A did not agree")
	}
	// Session B, same item, mid-round: 20 is now taboo there.
	res, err := p.Guess(infoB.Session, "b1", 20)
	if err != nil || res.Accepted || res.Reason != "taboo" {
		t.Fatalf("promoted word accepted in concurrent session: %+v err=%v", res, err)
	}
	evs, _, err := p.Events(context.Background(), infoB.Session, "b1", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sawTaboo := false
	for _, ev := range evs {
		if ev.Type == EvTaboo && len(ev.Words) == 1 && ev.Words[0] == 20 {
			sawTaboo = true
		}
	}
	if !sawTaboo {
		t.Fatalf("no taboo event reached the concurrent session: %v", evs)
	}
	if p.Stats().TabooPromotions != 1 {
		t.Fatalf("TabooPromotions = %d", p.Stats().TabooPromotions)
	}
	// A fresh session on the item starts with the word already taboo.
	infoC, _ := joinPair(t, p, "c1", "c2")
	if len(infoC.Taboo) != 1 || infoC.Taboo[0] != 20 {
		t.Fatalf("new session taboo list = %v", infoC.Taboo)
	}
}

func TestRoundTimeoutAndLingerExpiry(t *testing.T) {
	p := newPlane(t, func(c *Config) {
		c.RoundTimeout = 30 * time.Millisecond
		c.EndLinger = 30 * time.Millisecond
	})
	info, _ := joinPair(t, p, "t1", "t2")
	// Long-poll across the deadline: the sweeper must end the round.
	evs, done, err := p.Events(context.Background(), info.Session, "t1", 1, time.Second)
	if err != nil || !done {
		t.Fatalf("Events: done=%v err=%v", done, err)
	}
	last := evs[len(evs)-1]
	if last.Type != EvEnd || last.Reason != EndTimeout {
		t.Fatalf("last event = %+v", last)
	}
	if st := p.Stats(); st.Open != 0 || st.Timeouts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// After the linger, the session is swept out entirely.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, _, err = p.Events(context.Background(), info.Session, "t1", 0, 0)
		if errors.Is(err, ErrUnknown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished session never swept out")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := p.Stats(); st.Resident != 0 {
		t.Fatalf("Resident = %d after linger", st.Resident)
	}
}

func TestPassAndLeave(t *testing.T) {
	p := newPlane(t, nil)
	info, _ := joinPair(t, p, "p1", "p2")
	if done, err := p.Pass(info.Session, "p1"); err != nil || done {
		t.Fatalf("single pass ended the round: done=%v err=%v", done, err)
	}
	if done, err := p.Pass(info.Session, "p2"); err != nil || !done {
		t.Fatalf("double pass: done=%v err=%v", done, err)
	}
	// Leave path on a second pair.
	info2, _ := joinPair(t, p, "q1", "q2")
	if err := p.Leave(info2.Session, "q1"); err != nil {
		t.Fatal(err)
	}
	evs, done, err := p.Events(context.Background(), info2.Session, "q2", 0, 0)
	if err != nil || !done {
		t.Fatalf("partner events: done=%v err=%v", done, err)
	}
	if last := evs[len(evs)-1]; last.Reason != EndLeft {
		t.Fatalf("end reason = %q", last.Reason)
	}
	if st := p.Stats(); st.Passes != 1 || st.Abandons != 1 || st.Open != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGuessValidation(t *testing.T) {
	p := newPlane(t, func(c *Config) { c.MaxGuesses = 2 })
	info, _ := joinPair(t, p, "v1", "v2")
	id := info.Session
	if _, err := p.Guess(ID(999), "v1", 1); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown session: %v", err)
	}
	if _, err := p.Guess(id, "stranger", 1); !errors.Is(err, ErrNotPlayer) {
		t.Fatalf("stranger guess: %v", err)
	}
	// Out-of-lexicon words are rejected before they can index the
	// lexicon (they arrive unchecked off the wire).
	if _, err := p.Guess(id, "v1", -1); !errors.Is(err, ErrBadWord) {
		t.Fatalf("negative word: %v", err)
	}
	if _, err := p.Guess(id, "v1", 1<<30); !errors.Is(err, ErrBadWord) {
		t.Fatalf("huge word: %v", err)
	}
	if res, err := p.Guess(id, "v1", 1); err != nil || !res.Accepted {
		t.Fatalf("guess 1: %+v err=%v", res, err)
	}
	if res, err := p.Guess(id, "v1", 1); err != nil || res.Accepted || res.Reason != "repeat" {
		t.Fatalf("repeat guess: %+v err=%v", res, err)
	}
	if res, err := p.Guess(id, "v1", 2); err != nil || !res.Accepted {
		t.Fatalf("guess 2: %+v err=%v", res, err)
	}
	if res, err := p.Guess(id, "v1", 3); err != nil || res.Accepted || res.Reason != "limit" {
		t.Fatalf("guess past MaxGuesses: %+v err=%v", res, err)
	}
	// Partner exhausts too without matching: round ends "exhausted".
	if _, err := p.Guess(id, "v2", 4); err != nil {
		t.Fatal(err)
	}
	res, err := p.Guess(id, "v2", 5)
	if err != nil || !res.Done {
		t.Fatalf("exhausting guess: %+v err=%v", res, err)
	}
	if _, err := p.Guess(id, "v2", 6); !errors.Is(err, ErrEnded) {
		t.Fatalf("guess after end: %v", err)
	}
	if st := p.Stats(); st.Exhausted != 1 || st.Open != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEventsLongPollWakesOnGuess(t *testing.T) {
	p := newPlane(t, nil)
	info, _ := joinPair(t, p, "l1", "l2")
	go func() {
		time.Sleep(30 * time.Millisecond)
		_, _ = p.Guess(info.Session, "l2", 12)
	}()
	start := time.Now()
	// Cursor 1 skips the start event, so this must block until the guess.
	evs, _, err := p.Events(context.Background(), info.Session, "l1", 1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Type != EvPartnerGuess || evs[0].Seat != info.Seat^1 {
		t.Fatalf("long-poll events = %+v", evs)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("long-poll returned before the guess was made")
	}
	// An expired wait with no events returns promptly and empty.
	evs, done, err := p.Events(context.Background(), info.Session, "l1", evs[0].Seq+1, 20*time.Millisecond)
	if err != nil || done || len(evs) != 0 {
		t.Fatalf("empty poll: evs=%v done=%v err=%v", evs, done, err)
	}
}

// TestEventsUnblockOnClose pins that Close wakes parked long-polls: HTTP
// shutdown waits for in-flight handlers, so a stranded poll would stall
// the drain for its full wait.
func TestEventsUnblockOnClose(t *testing.T) {
	p := newPlane(t, nil)
	info, _ := joinPair(t, p, "u1", "u2")
	errCh := make(chan error, 1)
	go func() {
		_, _, err := p.Events(context.Background(), info.Session, "u1", 1, time.Minute)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	p.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("poll after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("long-poll did not unblock on Close")
	}
}

func TestJoinContextCancel(t *testing.T) {
	p := newPlane(t, func(c *Config) { c.MatchTimeout = 10 * time.Second })
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := p.Join(ctx, "zoe"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled join: %v", err)
	}
	if p.mm.Waiting() != 0 {
		t.Fatalf("cancelled player still pooled: Waiting = %d", p.mm.Waiting())
	}
	// Double enqueue while waiting is refused.
	go func() { _, _ = p.Join(context.Background(), "dup") }()
	deadline := time.Now().Add(2 * time.Second)
	for p.mm.Waiting() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := p.Join(context.Background(), "dup"); !errors.Is(err, match.ErrAlreadyWaiting) {
		t.Fatalf("double join: %v", err)
	}
}

func TestJoinValidation(t *testing.T) {
	p := newPlane(t, nil)
	if _, err := p.Join(context.Background(), ""); !errors.Is(err, ErrNoPlayer) {
		t.Fatalf("empty player: %v", err)
	}
	p.Close()
	if _, err := p.Join(context.Background(), "late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("join after close: %v", err)
	}
}

func TestShardsRoundUpToPowerOfTwo(t *testing.T) {
	p := newPlane(t, func(c *Config) { c.Shards = 5 })
	if got := p.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8", got)
	}
	if p.mask != 7 {
		t.Fatalf("mask = %d", p.mask)
	}
}
