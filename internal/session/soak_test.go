package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"humancomp/internal/agree"
	"humancomp/internal/rng"
	"humancomp/internal/vocab"
)

// TestSessionSoak is the CI soak job: many concurrent paired players with
// seeded disconnects, lone players falling back to replay mode, taboo
// promotions landing mid-game — all under -race. At the end the
// open-session gauge must return to zero and the replay fallback must
// have engaged.
func TestSessionSoak(t *testing.T) {
	const (
		players     = 200 // concurrent live joiners (100 potential pairs)
		loners      = 24  // late joiners who can only get replay partners
		items       = 16
		disconnects = 25 // players who vanish mid-round (seeded)
	)
	var item atomic.Int64
	var results atomic.Int64
	cfg := Config{
		Shards:       8,
		MatchTimeout: 300 * time.Millisecond,
		RoundTimeout: 2 * time.Second,
		EndLinger:    50 * time.Millisecond,
		SweepEvery:   5 * time.Millisecond,
		MaxGuesses:   8,
		Match:        agree.Exact,
		PromoteAfter: 3,
		Seed:         42,
		Lexicon:      vocab.NewLexicon(vocab.LexiconConfig{Size: 2000, ZipfS: 1, SynonymRate: 0, Seed: 2}),
		NextItem:     func() int { return int(item.Add(1)) % items },
		OnResult:     func(Result) { results.Add(1) },
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	src := rng.New(7)
	drop := make(map[int]bool, disconnects)
	for len(drop) < disconnects {
		drop[src.Intn(players)] = true
	}

	// play drives one player's whole session: join, long-poll events in
	// one goroutine, guess toward agreement in another. Guessing word
	// item*31+k means both seats of a pair converge within MaxGuesses.
	play := func(name string, idx int, disconnect bool) error {
		ctx := context.Background()
		var info JoinInfo
		for attempt := 0; ; attempt++ {
			var err error
			info, err = p.Join(ctx, name)
			if err == nil {
				break
			}
			// Very early joiners can time out before the first transcript
			// is recorded; retrying models the real client's behavior.
			if errors.Is(err, ErrNoPartner) && attempt < 5 {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			return fmt.Errorf("%s join: %w", name, err)
		}
		pollDone := make(chan struct{})
		go func() {
			defer close(pollDone)
			after := 0
			for {
				evs, done, err := p.Events(ctx, info.Session, name, after, 500*time.Millisecond)
				if err != nil || done {
					return
				}
				if len(evs) > 0 {
					after = evs[len(evs)-1].Seq
				}
			}
		}()
		for k := 0; ; k++ {
			if disconnect && k == 2 {
				if err := p.Leave(info.Session, name); err != nil {
					return fmt.Errorf("%s leave: %w", name, err)
				}
				break
			}
			// Seat-offset sequences overlap after a few guesses, so live
			// pairs converge but not on the very first word.
			res, err := p.Guess(info.Session, name, info.Item*31+info.Seat*3+k)
			if errors.Is(err, ErrEnded) || errors.Is(err, ErrUnknown) {
				break // partner finished or left; round is over
			}
			if err != nil {
				return fmt.Errorf("%s guess: %w", name, err)
			}
			if res.Done {
				break
			}
			if !res.Accepted && res.Reason == "limit" {
				if _, err := p.Pass(info.Session, name); err != nil && !errors.Is(err, ErrUnknown) {
					return fmt.Errorf("%s pass: %w", name, err)
				}
				break
			}
			// A touch of jitter so pairs interleave guesses realistically.
			if k%3 == idx%3 {
				time.Sleep(time.Millisecond)
			}
		}
		<-pollDone
		return nil
	}

	var wg sync.WaitGroup
	errc := make(chan error, players+loners)
	for i := 0; i < players; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := play(fmt.Sprintf("p%03d", i), i, drop[i]); err != nil {
				errc <- err
			}
		}(i)
	}
	wg.Wait()

	// Lone stragglers arrive one at a time — nobody to pair with, so every
	// one of them must ride a recorded transcript from the live phase.
	for i := 0; i < loners; i++ {
		if err := play(fmt.Sprintf("lone%02d", i), i, false); err != nil {
			errc <- err
		}
	}
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Every round must close on its own — no waiting for RoundTimeout
	// here would hide leaks, so poll briefly for the gauge to settle.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Open != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := p.Stats()
	if st.Open != 0 {
		t.Fatalf("open-session gauge stuck at %d: %+v", st.Open, st)
	}
	if st.Replay == 0 {
		t.Fatalf("replay fallback never engaged: %+v", st)
	}
	if st.Replay < int64(loners) {
		t.Errorf("only %d replay sessions for %d loners: %+v", st.Replay, loners, st)
	}
	if st.Agreements == 0 {
		t.Fatalf("no agreements in the whole soak: %+v", st)
	}
	if st.Abandons == 0 {
		t.Errorf("seeded disconnects produced no abandons: %+v", st)
	}
	if got := results.Load(); got != st.Live+st.Replay {
		t.Errorf("OnResult fired %d times for %d sessions", got, st.Live+st.Replay)
	}
	if st.MatchWait.Count == 0 {
		t.Errorf("match-wait histogram empty: %+v", st.MatchWait)
	}
	t.Logf("soak: %+v", st)
}
