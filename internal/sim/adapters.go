package sim

import (
	"time"

	"humancomp/internal/games/esp"
	"humancomp/internal/games/matchin"
	"humancomp/internal/games/peekaboom"
	"humancomp/internal/games/phetch"
	"humancomp/internal/games/squigl"
	"humancomp/internal/games/tagatune"
	"humancomp/internal/games/verbosity"
	"humancomp/internal/match"
	"humancomp/internal/rng"
	"humancomp/internal/score"
	"humancomp/internal/worker"
)

// ESPAdapter wires the ESP Game into the crowd simulator: one round labels
// one random unretired image; an agreement is one output. Live transcripts
// feed the replay store so solo fallback works, and an optional observer
// sees every round (the anti-fraud experiments hook in there).
type ESPAdapter struct {
	Game   *esp.Game
	Replay *match.ReplayStore
	// Observer, when set, is called after every live round.
	Observer func(a, b *worker.Worker, res esp.RoundResult)
	// Board, when set, scores every player's rounds (points, streaks).
	Board *score.Board
	src   *rng.Source
}

// NewESPAdapter returns an adapter with replay recording enabled.
func NewESPAdapter(g *esp.Game, seed uint64) *ESPAdapter {
	src := rng.New(seed)
	return &ESPAdapter{
		Game:   g,
		Replay: match.NewReplayStore(src, 8),
		src:    src.Split(),
	}
}

// PlayRound implements PairGame.
func (a *ESPAdapter) PlayRound(w1, w2 *worker.Worker) (int, time.Duration) {
	imgID, ok := a.Game.PickImage()
	if !ok {
		return 0, time.Minute // corpus exhausted; idle beat
	}
	res := a.Game.PlayRound(w1, w2, imgID)
	if a.Replay != nil {
		for i, w := range [2]*worker.Worker{w1, w2} {
			if len(res.Guesses[i]) > 0 {
				a.Replay.Record(match.ReplaySession{Item: imgID, Player: w.ID, Words: res.Guesses[i]})
			}
		}
	}
	if a.Observer != nil {
		a.Observer(w1, w2, res)
	}
	if a.Board != nil {
		a.Board.RecordRound(w1.ID, res.Agreed, res.Duration)
		a.Board.RecordRound(w2.ID, res.Agreed, res.Duration)
	}
	outputs := 0
	if res.Agreed {
		outputs = 1
	}
	return outputs, res.Duration
}

// PlaySolo implements SoloGame via the replay store: the round is played
// on an item that actually has a transcript, skipping retired images and
// the player's own recordings.
func (a *ESPAdapter) PlaySolo(w *worker.Worker) (int, time.Duration, bool) {
	var sess match.ReplaySession
	found := false
	for attempts := 0; attempts < 8; attempts++ {
		s, ok := a.Replay.Any()
		if !ok {
			return 0, 0, false
		}
		if s.Player == w.ID || a.Game.Taboo.Retired(s.Item) {
			continue
		}
		sess, found = s, true
		break
	}
	if !found {
		return 0, 0, false
	}
	res := a.Game.PlayRoundReplay(w, match.NewReplayer(sess), sess.Item)
	outputs := 0
	if res.Agreed {
		outputs = 1
	}
	return outputs, res.Duration, true
}

// PeekaboomAdapter wires Peekaboom in: one round is one locate task; a
// solved round is one output.
type PeekaboomAdapter struct {
	Game *peekaboom.Game
}

// PlayRound implements PairGame.
func (a *PeekaboomAdapter) PlayRound(boom, peek *worker.Worker) (int, time.Duration) {
	imgID, word := a.Game.PickTask()
	res := a.Game.PlayRound(boom, peek, imgID, word)
	outputs := 0
	if res.Solved {
		outputs = 1
	}
	return outputs, res.Duration
}

// VerbosityAdapter wires Verbosity in: a solved round contributes its
// collected facts as outputs.
type VerbosityAdapter struct {
	Game *verbosity.Game
}

// PlayRound implements PairGame.
func (a *VerbosityAdapter) PlayRound(narrator, guesser *worker.Worker) (int, time.Duration) {
	subject := a.Game.PickConcept()
	res := a.Game.PlayRound(narrator, guesser, subject)
	outputs := 0
	if res.Solved {
		outputs = len(res.Hints)
	}
	return outputs, res.Duration
}

// TagATuneAdapter wires the input-agreement game in: a successful round
// contributes its validated descriptions as outputs.
type TagATuneAdapter struct {
	Game *tagatune.Game
}

// PlayRound implements PairGame.
func (a *TagATuneAdapter) PlayRound(p1, p2 *worker.Worker) (int, time.Duration) {
	itemA, itemB, _ := a.Game.PickPair()
	res := a.Game.PlayRound(p1, p2, itemA, itemB)
	return res.Validated, res.Duration
}

// SquiglAdapter wires the outline-tracing game in: an agreed trace is one
// output.
type SquiglAdapter struct {
	Game *squigl.Game
}

// PlayRound implements PairGame.
func (a *SquiglAdapter) PlayRound(p1, p2 *worker.Worker) (int, time.Duration) {
	imgID, word := a.Game.PickTask()
	res := a.Game.PlayRound(p1, p2, imgID, word)
	outputs := 0
	if res.Agreed {
		outputs = 1
	}
	return outputs, res.Duration
}

// PhetchAdapter wires the caption game in: one player describes, the other
// seeks; a validated caption is one output.
type PhetchAdapter struct {
	Game *phetch.Game
}

// PlayRound implements PairGame.
func (a *PhetchAdapter) PlayRound(describer, seeker *worker.Worker) (int, time.Duration) {
	res := a.Game.PlayRound(describer, []*worker.Worker{seeker}, a.Game.PickImage())
	outputs := 0
	if res.Solved {
		outputs = 1
	}
	return outputs, res.Duration
}

// MatchinAdapter wires the preference game in: an agreed comparison is one
// output.
type MatchinAdapter struct {
	Game *matchin.Game
}

// PlayRound implements PairGame.
func (a *MatchinAdapter) PlayRound(p1, p2 *worker.Worker) (int, time.Duration) {
	x, y := a.Game.PickPair()
	res := a.Game.PlayRound(p1, p2, x, y)
	outputs := 0
	if res.Agreed {
		outputs = 1
	}
	return outputs, res.Duration
}
