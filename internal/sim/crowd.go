package sim

import (
	"time"

	"humancomp/internal/match"
	"humancomp/internal/metrics"
	"humancomp/internal/rng"
	"humancomp/internal/worker"
)

// PairGame adapts a two-player game to the crowd simulator: play one round
// between a and b, returning how many problem instances it solved and how
// much simulated time it took.
type PairGame interface {
	PlayRound(a, b *worker.Worker) (outputs int, d time.Duration)
}

// SoloGame adapts single-player (replayed-partner) play: one round for a,
// or ok == false when no recorded material is available.
type SoloGame interface {
	PlaySolo(a *worker.Worker) (outputs int, d time.Duration, ok bool)
}

// CrowdConfig parameterizes a crowd run.
type CrowdConfig struct {
	Workers []*worker.Worker
	Game    PairGame
	// Solo enables replayed single-player rounds for players the
	// matchmaker cannot pair within WaitTimeout; nil disables them.
	Solo SoloGame
	// WaitTimeout is how long a player waits for a live partner before
	// falling back to solo play (when Solo is set).
	WaitTimeout time.Duration
	// Horizon is the simulated span of the run.
	Horizon time.Duration
	// ArrivalSpread staggers first arrivals uniformly over this span so
	// the lobby does not start with a thundering herd.
	ArrivalSpread time.Duration
	// BreakMean is the mean pause before a returning player's next session.
	BreakMean time.Duration
	// MinRoundTime guards against zero-duration rounds when worker think
	// times are zeroed in tests.
	MinRoundTime time.Duration
	Seed         uint64
}

// DefaultCrowdConfig returns the crowd dynamics used by the experiments.
func DefaultCrowdConfig(workers []*worker.Worker, game PairGame) CrowdConfig {
	return CrowdConfig{
		Workers:       workers,
		Game:          game,
		WaitTimeout:   30 * time.Second,
		Horizon:       24 * time.Hour,
		ArrivalSpread: 4 * time.Hour,
		BreakMean:     6 * time.Hour,
		MinRoundTime:  5 * time.Second,
		Seed:          1,
	}
}

// Crowd runs a population against a game and accumulates GWAP metrics.
type Crowd struct {
	cfg  CrowdConfig
	sim  *Simulator
	mm   *match.Matchmaker
	src  *rng.Source
	gwap *metrics.GWAP

	byID      map[string]*worker.Worker
	sessions  map[string]*session
	horizon   time.Time
	start     time.Time
	retention *metrics.Retention
}

type session struct {
	start time.Time
	end   time.Time
}

// NewCrowd builds a crowd run starting at start.
func NewCrowd(cfg CrowdConfig, start time.Time) *Crowd {
	if len(cfg.Workers) == 0 {
		panic("sim: crowd needs at least one worker")
	}
	if cfg.Game == nil {
		panic("sim: crowd needs a game")
	}
	if cfg.Horizon <= 0 {
		panic("sim: horizon must be positive")
	}
	if cfg.MinRoundTime <= 0 {
		// A zero-duration round would schedule the next round at the same
		// virtual instant forever; refuse rather than hang.
		panic("sim: MinRoundTime must be positive")
	}
	src := rng.New(cfg.Seed)
	c := &Crowd{
		cfg:       cfg,
		sim:       NewSimulator(start),
		mm:        match.NewMatchmaker(src),
		src:       src,
		gwap:      metrics.NewGWAP(),
		byID:      make(map[string]*worker.Worker, len(cfg.Workers)),
		sessions:  make(map[string]*session),
		horizon:   start.Add(cfg.Horizon),
		start:     start,
		retention: metrics.NewRetention(),
	}
	for _, w := range cfg.Workers {
		c.byID[w.ID] = w
	}
	return c
}

// Metrics exposes the accumulated GWAP metrics.
func (c *Crowd) Metrics() *metrics.GWAP { return c.gwap }

// Retention exposes the cohort-retention tracker (visit days are counted
// in simulated days from the crowd's start).
func (c *Crowd) Retention() *metrics.Retention { return c.retention }

// Now returns the crowd's current virtual time, for observers that want to
// timestamp events (e.g. hourly output series).
func (c *Crowd) Now() time.Time { return c.sim.Now() }

// Run simulates the full horizon and returns the final metrics report.
func (c *Crowd) Run() metrics.Report {
	for _, w := range c.cfg.Workers {
		w := w
		delay := time.Duration(0)
		if c.cfg.ArrivalSpread > 0 {
			delay = time.Duration(c.src.Float64() * float64(c.cfg.ArrivalSpread))
		}
		c.sim.After(delay, func() { c.arrive(w) })
	}
	c.sim.Run(c.horizon)
	// Close the books on everyone still in a session at the horizon.
	for id, s := range c.sessions {
		end := c.horizon
		if s.end.Before(end) {
			end = s.end
		}
		if end.After(s.start) {
			c.gwap.RecordSession(id, end.Sub(s.start))
		}
		delete(c.sessions, id)
	}
	return c.gwap.Report()
}

// arrive begins a session for w.
func (c *Crowd) arrive(w *worker.Worker) {
	now := c.sim.Now()
	if !now.Before(c.horizon) {
		return
	}
	if _, inSession := c.sessions[w.ID]; inSession {
		return // already playing (stale return event)
	}
	c.retention.RecordVisit(w.ID, int(now.Sub(c.start)/(24*time.Hour)))
	c.sessions[w.ID] = &session{start: now, end: now.Add(w.SessionLength())}
	c.seekPartner(w)
}

// seekPartner puts w in the lobby or starts play.
func (c *Crowd) seekPartner(w *worker.Worker) {
	now := c.sim.Now()
	s := c.sessions[w.ID]
	if s == nil {
		return
	}
	if !now.Before(s.end) || !now.Before(c.horizon) {
		c.endSession(w)
		return
	}
	partner, ok, err := c.mm.Enqueue(w.ID)
	if err != nil {
		return // already waiting; the pending timeout event will handle it
	}
	if ok {
		c.playBurst(c.byID[partner], w)
		return
	}
	// Waiting. Fall back to solo play after WaitTimeout, and give up at
	// session end.
	if c.cfg.Solo != nil && c.cfg.WaitTimeout > 0 {
		c.sim.After(c.cfg.WaitTimeout, func() { c.soloFallback(w) })
	}
	c.sim.Schedule(s.end, func() {
		if c.mm.Leave(w.ID) {
			c.endSession(w)
		}
	})
}

// soloFallback switches a still-waiting player to replayed rounds, played
// as a chain of scheduled events so solo players across the crowd proceed
// concurrently in virtual time.
func (c *Crowd) soloFallback(w *worker.Worker) {
	if !c.mm.Leave(w.ID) {
		return // got paired in the meantime
	}
	c.soloRound(w)
}

func (c *Crowd) soloRound(w *worker.Worker) {
	s := c.sessions[w.ID]
	if s == nil {
		return
	}
	now := c.sim.Now()
	if !now.Before(s.end) || !now.Before(c.horizon) {
		c.endSession(w)
		return
	}
	outputs, d, ok := c.cfg.Solo.PlaySolo(w)
	if !ok {
		// Nothing recorded to play against yet: rejoin the lobby.
		c.seekPartner(w)
		return
	}
	c.gwap.RecordOutputs(outputs)
	if d < c.cfg.MinRoundTime {
		d = c.cfg.MinRoundTime
	}
	// Back to the lobby after each solo round: a live partner always
	// beats a recording, so solo play only ever fills matchmaking gaps.
	c.sim.After(d, func() { c.seekPartner(w) })
}

// playBurst starts a chain of round events for a pair, ending when either
// session (or the horizon) ends. Each round's duration is honored by
// scheduling the next round that far in the future, so many pairs play
// concurrently in virtual time.
func (c *Crowd) playBurst(a, b *worker.Worker) {
	sa, sb := c.sessions[a.ID], c.sessions[b.ID]
	if sa == nil || sb == nil {
		return
	}
	end := sa.end
	if sb.end.Before(end) {
		end = sb.end
	}
	if c.horizon.Before(end) {
		end = c.horizon
	}
	c.pairRound(a, b, end)
}

func (c *Crowd) pairRound(a, b *worker.Worker, end time.Time) {
	now := c.sim.Now()
	if !now.Before(end) {
		for _, w := range [2]*worker.Worker{a, b} {
			s := c.sessions[w.ID]
			if s != nil && now.Before(s.end) && now.Before(c.horizon) {
				c.seekPartner(w)
			} else {
				c.endSession(w)
			}
		}
		return
	}
	outputs, d := c.cfg.Game.PlayRound(a, b)
	c.gwap.RecordOutputs(outputs)
	if d < c.cfg.MinRoundTime {
		d = c.cfg.MinRoundTime
	}
	c.sim.After(d, func() { c.pairRound(a, b, end) })
}

// endSession closes w's session, records it, and schedules a possible return.
func (c *Crowd) endSession(w *worker.Worker) {
	s := c.sessions[w.ID]
	if s == nil {
		return
	}
	delete(c.sessions, w.ID)
	now := c.sim.Now()
	end := now
	if s.end.Before(end) {
		end = s.end
	}
	if end.After(s.start) {
		c.gwap.RecordSession(w.ID, end.Sub(s.start))
	}
	if w.Returns() && c.cfg.BreakMean > 0 {
		gap := time.Duration(c.src.Exp(1/c.cfg.BreakMean.Seconds()) * float64(time.Second))
		if now.Add(gap).Before(c.horizon) {
			c.sim.Schedule(now.Add(gap), func() { c.arrive(w) })
		}
	}
}
