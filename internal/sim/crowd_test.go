package sim

import (
	"testing"
	"time"

	"humancomp/internal/games/esp"
	"humancomp/internal/vocab"
	"humancomp/internal/worker"
)

func espAdapter(tb testing.TB, seed uint64) *ESPAdapter {
	tb.Helper()
	c := vocab.NewCorpus(vocab.CorpusConfig{
		Lexicon:     vocab.LexiconConfig{Size: 400, ZipfS: 1, SynonymRate: 0.25, Seed: 1},
		NumImages:   500,
		MeanObjects: 4,
		CanvasW:     640,
		CanvasH:     480,
		Seed:        2,
	})
	cfg := esp.DefaultConfig()
	cfg.Seed = seed
	return NewESPAdapter(esp.New(c, cfg), seed)
}

func TestCrowdProducesPlayAndOutputs(t *testing.T) {
	ws := worker.NewPopulation(worker.DefaultPopulationConfig(60))
	cfg := DefaultCrowdConfig(ws, espAdapter(t, 3))
	cfg.Horizon = 8 * time.Hour
	crowd := NewCrowd(cfg, t0)
	rep := crowd.Run()

	if rep.Players == 0 || rep.Sessions == 0 {
		t.Fatalf("no play recorded: %+v", rep)
	}
	if rep.Outputs == 0 {
		t.Fatal("no outputs produced")
	}
	if rep.TotalPlayHours <= 0 {
		t.Fatal("no play time accumulated")
	}
	if rep.ThroughputPerHour <= 0 || rep.ALPMinutes <= 0 {
		t.Fatalf("degenerate metrics: %+v", rep)
	}
	// Sanity: expected contribution = throughput × ALP.
	want := rep.ThroughputPerHour * rep.ALPMinutes / 60
	if diff := rep.ExpectedContribution - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("expected contribution inconsistent: %v vs %v", rep.ExpectedContribution, want)
	}
}

func TestCrowdDeterministic(t *testing.T) {
	run := func() any {
		ws := worker.NewPopulation(worker.DefaultPopulationConfig(30))
		cfg := DefaultCrowdConfig(ws, espAdapter(t, 7))
		cfg.Horizon = 4 * time.Hour
		cfg.Seed = 42
		return NewCrowd(cfg, t0).Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("crowd runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestSoloFallbackRescuesOddPlayer(t *testing.T) {
	// One player alone: without solo fallback they can never play.
	mkCfg := func(adapter *ESPAdapter, solo bool) CrowdConfig {
		ws := worker.NewPopulation(worker.DefaultPopulationConfig(1))
		cfg := DefaultCrowdConfig(ws, adapter)
		cfg.Horizon = 6 * time.Hour
		cfg.WaitTimeout = time.Minute
		if solo {
			cfg.Solo = adapter
		}
		return cfg
	}

	// Seed the replay store with a real two-player run first.
	adapter := espAdapter(t, 9)
	ws2 := worker.NewPopulation(worker.DefaultPopulationConfig(10))
	warm := DefaultCrowdConfig(ws2, adapter)
	warm.Horizon = 4 * time.Hour
	NewCrowd(warm, t0).Run()
	if adapter.Replay.Size() == 0 {
		t.Fatal("warm-up produced no replay transcripts")
	}

	repNoSolo := NewCrowd(mkCfg(adapter, false), t0).Run()
	repSolo := NewCrowd(mkCfg(adapter, true), t0).Run()
	if repNoSolo.Outputs != 0 {
		t.Fatalf("lone player produced %d outputs without solo mode", repNoSolo.Outputs)
	}
	if repSolo.Outputs == 0 {
		t.Fatal("solo fallback produced no outputs")
	}
}

func TestObserverSeesRounds(t *testing.T) {
	adapter := espAdapter(t, 11)
	rounds := 0
	adapter.Observer = func(a, b *worker.Worker, res esp.RoundResult) { rounds++ }
	ws := worker.NewPopulation(worker.DefaultPopulationConfig(20))
	cfg := DefaultCrowdConfig(ws, adapter)
	cfg.Horizon = 2 * time.Hour
	NewCrowd(cfg, t0).Run()
	if rounds == 0 {
		t.Fatal("observer saw no rounds")
	}
}

func TestMoreWorkersMoreThroughputTotal(t *testing.T) {
	run := func(n int) int64 {
		ws := worker.NewPopulation(worker.DefaultPopulationConfig(n))
		cfg := DefaultCrowdConfig(ws, espAdapter(t, 13))
		cfg.Horizon = 4 * time.Hour
		return NewCrowd(cfg, t0).Run().Outputs
	}
	small, big := run(10), run(80)
	if big <= small {
		t.Errorf("outputs did not scale with population: %d (10 workers) vs %d (80 workers)", small, big)
	}
}

func TestCrowdPanics(t *testing.T) {
	ws := worker.NewPopulation(worker.DefaultPopulationConfig(2))
	ad := espAdapter(t, 15)
	for name, cfg := range map[string]CrowdConfig{
		"no workers":   {Game: ad, Horizon: time.Hour, MinRoundTime: time.Second},
		"no game":      {Workers: ws, Horizon: time.Hour, MinRoundTime: time.Second},
		"zero horizon": {Workers: ws, Game: ad, MinRoundTime: time.Second},
		"zero round":   {Workers: ws, Game: ad, Horizon: time.Hour},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			NewCrowd(cfg, t0)
		}()
	}
}

func BenchmarkCrowdHour(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := worker.NewPopulation(worker.DefaultPopulationConfig(50))
		cfg := DefaultCrowdConfig(ws, espAdapter(b, uint64(i+1)))
		cfg.Horizon = time.Hour
		NewCrowd(cfg, t0).Run()
	}
}

func TestCrowdRetentionTracked(t *testing.T) {
	ws := worker.NewPopulation(worker.DefaultPopulationConfig(40))
	cfg := DefaultCrowdConfig(ws, espAdapter(t, 17))
	cfg.Horizon = 72 * time.Hour // three days so returns land on later days
	cfg.BreakMean = 12 * time.Hour
	crowd := NewCrowd(cfg, t0)
	crowd.Run()
	ret := crowd.Retention()
	if ret.Players() == 0 {
		t.Fatal("no players tracked")
	}
	curve := ret.Curve(2)
	if curve[0] != 1 {
		t.Fatalf("day-0 retention = %v", curve[0])
	}
	// With ReturnProb 0.55 and 12h mean breaks, some but not all players
	// come back on later days.
	if curve[1] <= 0 || curve[1] >= 1 {
		t.Errorf("day-1 retention = %v; expected a genuine fraction", curve[1])
	}
}
