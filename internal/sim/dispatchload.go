package sim

// This file holds the crowd-side helpers for driving a live dispatch
// service: given leased task views, a modeled worker produces the answers
// a human would, one view at a time or a whole leased batch at once. The
// helpers speak only task views and answers — no HTTP — so hcsim's
// single-call and batched paths share one crowd model.

import (
	"humancomp/internal/task"
	"humancomp/internal/vocab"
	"humancomp/internal/worker"
)

// labelGuesses is how many tag guesses a worker volunteers per labeling
// task, mirroring an ESP-style round where a player types a few words
// before moving on.
const labelGuesses = 3

// LabelAnswer produces one modeled human answer for a leased labeling
// task: up to labelGuesses tags the worker believes describe the image,
// falling back to a random lexicon word when the worker has nothing (an
// answer must carry at least one word).
func LabelAnswer(w *worker.Worker, corpus *vocab.Corpus, v task.View) task.Answer {
	img := corpus.Image(v.Payload.ImageID)
	said := map[int]bool{}
	var words []int
	for k := 0; k < labelGuesses; k++ {
		tag := w.GuessTag(corpus.Lexicon, img, nil, said)
		if tag < 0 {
			break
		}
		said[corpus.Lexicon.Canonical(tag)] = true
		words = append(words, tag)
	}
	if len(words) == 0 {
		words = []int{corpus.Lexicon.Sample()}
	}
	return task.Answer{Words: words}
}

// LabelAnswers answers a whole leased batch, index-aligned with views —
// the crowd side of the batched data plane.
func LabelAnswers(w *worker.Worker, corpus *vocab.Corpus, views []task.View) []task.Answer {
	out := make([]task.Answer, len(views))
	for i, v := range views {
		out[i] = LabelAnswer(w, corpus, v)
	}
	return out
}

// ChoiceAnswer produces one modeled human vote for a leased choice task
// (Compare/Judge): the worker votes on the binary truth supplied by the
// experiment's ground-truth table. truthOf maps a task's ImageID to its
// true class.
func ChoiceAnswer(w *worker.Worker, v task.View, truthOf func(imageID int) int) task.Answer {
	return task.Answer{Choice: w.Vote(truthOf(v.Payload.ImageID), 2)}
}

// ChoiceAnswers answers a whole leased batch of choice tasks,
// index-aligned with views.
func ChoiceAnswers(w *worker.Worker, views []task.View, truthOf func(imageID int) int) []task.Answer {
	out := make([]task.Answer, len(views))
	for i, v := range views {
		out[i] = ChoiceAnswer(w, v, truthOf)
	}
	return out
}

// ChoiceVotes precomputes every worker's would-be vote on every choice
// task: votes[t][w] is worker w's vote on task t whose true class is
// truth[t]. Experiments that compare completion policies over the same
// crowd replay one table in every arm, so the arms differ only in which
// votes get collected — a paired design that removes vote-sampling noise
// from the comparison.
func ChoiceVotes(ws []*worker.Worker, truth []int, classes int) [][]int {
	votes := make([][]int, len(truth))
	for t, tr := range truth {
		votes[t] = make([]int, len(ws))
		for i, w := range ws {
			votes[t][i] = w.Vote(tr, classes)
		}
	}
	return votes
}
