// Package sim provides a deterministic discrete-event simulator and the
// crowd model that drives the experiments: players arrive, wait in the
// matchmaker, play bursts of game rounds with their partner, leave when
// their session ends, and return with geometric probability. All time is
// virtual, so a simulated month of play runs in seconds and the GWAP
// metrics (throughput, ALP, expected contribution) are measured in
// simulated wall time exactly as the deployed games measured them.
package sim

import (
	"container/heap"
	"time"
)

// Clock exposes the current time; the simulator's virtual clock and the
// dispatch service's wall clock both satisfy it.
type Clock interface {
	Now() time.Time
}

// WallClock is the real-time clock.
type WallClock struct{}

// Now returns time.Now().
func (WallClock) Now() time.Time { return time.Now() }

// Simulator is a deterministic discrete-event scheduler with a virtual
// clock. It is not safe for concurrent use: all events run on the caller's
// goroutine, which is what makes runs reproducible.
type Simulator struct {
	now    time.Time
	events eventHeap
	seq    int64
	ran    int64
}

// NewSimulator returns a simulator whose clock starts at start.
func NewSimulator(start time.Time) *Simulator {
	return &Simulator{now: start}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Time { return s.now }

// Schedule enqueues fn to run at the given virtual time. Events scheduled
// in the past run immediately at the current time (time never goes
// backwards). Ties run in scheduling order, which keeps runs deterministic.
func (s *Simulator) Schedule(at time.Time, fn func()) {
	if at.Before(s.now) {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (s *Simulator) After(d time.Duration, fn func()) {
	s.Schedule(s.now.Add(d), fn)
}

// Run executes events in time order until the queue empties or the next
// event lies beyond until; the clock finishes at until (or the last event
// time if later events remain). It returns the number of events executed.
func (s *Simulator) Run(until time.Time) int64 {
	before := s.ran
	for s.events.Len() > 0 {
		next := s.events[0]
		if next.at.After(until) {
			break
		}
		heap.Pop(&s.events)
		s.now = next.at
		next.fn()
		s.ran++
	}
	if s.now.Before(until) {
		s.now = until
	}
	return s.ran - before
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.events.Len() }

type event struct {
	at  time.Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
