package sim

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)

func TestSimulatorRunsInTimeOrder(t *testing.T) {
	s := NewSimulator(t0)
	var order []int
	s.Schedule(t0.Add(3*time.Second), func() { order = append(order, 3) })
	s.Schedule(t0.Add(1*time.Second), func() { order = append(order, 1) })
	s.Schedule(t0.Add(2*time.Second), func() { order = append(order, 2) })
	n := s.Run(t0.Add(time.Minute))
	if n != 3 {
		t.Fatalf("ran %d events", n)
	}
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != t0.Add(time.Minute) {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSimulatorTiesRunInScheduleOrder(t *testing.T) {
	s := NewSimulator(t0)
	var order []int
	at := t0.Add(time.Second)
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(at, func() { order = append(order, i) })
	}
	s.Run(t0.Add(time.Minute))
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestSimulatorEventsCanSchedule(t *testing.T) {
	s := NewSimulator(t0)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			s.After(time.Second, tick)
		}
	}
	s.After(time.Second, tick)
	s.Run(t0.Add(time.Hour))
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestSimulatorStopsAtHorizon(t *testing.T) {
	s := NewSimulator(t0)
	ran := false
	s.Schedule(t0.Add(2*time.Hour), func() { ran = true })
	s.Run(t0.Add(time.Hour))
	if ran {
		t.Fatal("event beyond horizon executed")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	if s.Now() != t0.Add(time.Hour) {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	s := NewSimulator(t0)
	s.Schedule(t0.Add(time.Minute), func() {
		ranAt := time.Time{}
		s.Schedule(t0, func() { ranAt = s.Now() }) // in the past
		_ = ranAt
	})
	s.Run(t0.Add(time.Hour))
	if s.Pending() != 0 {
		t.Fatal("past event never ran")
	}
}

func TestClockNeverGoesBackwards(t *testing.T) {
	s := NewSimulator(t0)
	last := t0
	for i := 1; i <= 100; i++ {
		s.Schedule(t0.Add(time.Duration(i)*time.Second), func() {
			if s.Now().Before(last) {
				t.Fatal("clock went backwards")
			}
			last = s.Now()
		})
	}
	s.Run(t0.Add(time.Hour))
}
