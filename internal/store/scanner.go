package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrTornRecord reports a v2 record stream that ended mid-record: the
// length prefix or payload was cut short. For a file this is the usual
// crash artifact; for a replication stream it means the connection dropped
// and the consumer should resume from the last good sequence.
var ErrTornRecord = errors.New("store: torn wal record")

// RecordScanner reads consecutive v2 WAL records from a stream, verifying
// each frame's checksum before surfacing it. An optional file header
// ("HCWL" magic) at the start is consumed transparently, so the scanner
// reads both whole WAL files and headerless record streams (the
// replication wire format). Unlike replay, which silently truncates a
// damaged tail, the scanner reports how the stream ended: Err returns nil
// after a clean end-of-stream, ErrTornRecord after a mid-record cut, and a
// descriptive error for a corrupt (checksum or decode failure) record.
//
//	sc := store.NewRecordScanner(r)
//	for sc.Scan() {
//		use(sc.Seq(), sc.Event(), sc.Frame())
//	}
//	if err := sc.Err(); err != nil { ... }
type RecordScanner struct {
	br      *bufio.Reader
	started bool
	seq     int64
	event   Event
	frame   []byte
	err     error
	done    bool
}

// NewRecordScanner returns a scanner over r. Records are numbered from
// base+1: pass 0 for a whole file, or the from-1 cursor of a replication
// stream so Seq matches the leader's sequence numbers.
func NewRecordScanner(r io.Reader, base int64) *RecordScanner {
	return &RecordScanner{br: bufio.NewReaderSize(r, 64*1024), seq: base}
}

// Scan advances to the next record. It returns false at the end of the
// stream — check Err to learn whether the end was clean.
func (sc *RecordScanner) Scan() bool {
	if sc.done {
		return false
	}
	if !sc.started {
		sc.started = true
		head, err := sc.br.Peek(len(walMagic))
		if err == nil && bytes.Equal(head, walMagic[:]) {
			sc.br.Discard(len(walMagic))
		}
	}
	var hdr [walRecordHeader]byte
	if _, err := io.ReadFull(sc.br, hdr[:]); err != nil {
		sc.done = true
		switch err {
		case io.EOF:
			// clean end
		case io.ErrUnexpectedEOF:
			sc.err = ErrTornRecord
		default:
			sc.err = err
		}
		return false
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxWALRecord {
		sc.done = true
		sc.err = fmt.Errorf("store: record %d: implausible length %d", sc.seq+1, length)
		return false
	}
	frame := make([]byte, walRecordHeader+int(length))
	copy(frame, hdr[:])
	if _, err := io.ReadFull(sc.br, frame[walRecordHeader:]); err != nil {
		sc.done = true
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			sc.err = ErrTornRecord
		} else {
			sc.err = err
		}
		return false
	}
	payload := frame[walRecordHeader:]
	if crc32.Checksum(payload, castagnoli) != sum {
		sc.done = true
		sc.err = fmt.Errorf("store: record %d: checksum mismatch", sc.seq+1)
		return false
	}
	var e Event
	if err := json.Unmarshal(payload, &e); err != nil {
		sc.done = true
		sc.err = fmt.Errorf("store: record %d: decode: %w", sc.seq+1, err)
		return false
	}
	sc.seq++
	sc.event = e
	sc.frame = frame
	return true
}

// Seq returns the sequence number of the current record.
func (sc *RecordScanner) Seq() int64 { return sc.seq }

// Event returns the decoded current record.
func (sc *RecordScanner) Event() Event { return sc.event }

// Frame returns the current record's framed bytes (length prefix, checksum,
// payload). The slice is freshly allocated per record and may be retained.
func (sc *RecordScanner) Frame() []byte { return sc.frame }

// Err returns nil if the stream ended cleanly at a record boundary, and
// otherwise the reason scanning stopped.
func (sc *RecordScanner) Err() error { return sc.err }
