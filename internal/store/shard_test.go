package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"humancomp/internal/task"
)

// Shard-invariance properties: a store's observable behavior — snapshot
// bytes, restore results, allocator seeding — must not depend on how many
// shards it was built with. testing/quick drives these with random task
// populations and shard counts.

// taskSpec is a compact, quick-generatable description of one task.
type taskSpec struct {
	ID       uint16
	Priority int8
	Status   uint8
	Answers  uint8
}

// build expands the spec into a deterministic task: equal specs always
// produce byte-identical tasks, including timestamps.
func (sp taskSpec) build() *task.Task {
	id := task.ID(sp.ID%4096) + 1
	t := &task.Task{
		ID:         id,
		Kind:       task.Label,
		Payload:    task.Payload{ImageID: int(sp.ID), Taboo: []int{int(sp.Answers)}},
		Redundancy: int(sp.Answers%3) + 1,
		Priority:   int(sp.Priority),
		Status:     task.Status(sp.Status % 3),
		CreatedAt:  time.Unix(int64(id), 0).UTC(),
	}
	for i := 0; i < int(sp.Answers%4); i++ {
		t.Answers = append(t.Answers, task.Answer{
			TaskID:   id,
			WorkerID: fmt.Sprintf("w%d", i),
			At:       t.CreatedAt.Add(time.Duration(i+1) * time.Second),
			Words:    []int{int(sp.ID), i},
		})
	}
	if t.Status != task.Open {
		t.DoneAt = t.CreatedAt.Add(time.Minute)
	}
	return t
}

func fill(s *Store, specs []taskSpec) {
	for _, sp := range specs {
		s.Put(sp.build())
	}
}

func snapshotBytes(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestShardedSnapshotMatchesSingleShard: for any task population and any
// shard count, the snapshot wire format is byte-identical to a one-shard
// store holding the same tasks.
func TestShardedSnapshotMatchesSingleShard(t *testing.T) {
	prop := func(specs []taskSpec, shardSeed uint8) bool {
		shards := 2 << (shardSeed % 6) // 2, 4, ... 64
		many := NewSharded(shards)
		one := NewSharded(1)
		fill(many, specs)
		fill(one, specs)
		return bytes.Equal(snapshotBytes(t, many), snapshotBytes(t, one))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRestoreRoundTrip: restoring a snapshot into a store with a
// different shard count and snapshotting again reproduces the original
// bytes exactly.
func TestShardedRestoreRoundTrip(t *testing.T) {
	prop := func(specs []taskSpec, a, b uint8) bool {
		src := NewSharded(1 << (a % 7))
		fill(src, specs)
		orig := snapshotBytes(t, src)
		dst := NewSharded(1 << (b % 7))
		if err := dst.Restore(bytes.NewReader(orig)); err != nil {
			t.Fatalf("restore: %v", err)
		}
		return bytes.Equal(snapshotBytes(t, dst), orig)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreSeedsNextID: after a restore, the atomic allocator hands out
// IDs strictly greater than every restored task ID, for any shard count.
func TestRestoreSeedsNextID(t *testing.T) {
	prop := func(specs []taskSpec, shardSeed uint8) bool {
		src := NewSharded(1)
		fill(src, specs)
		dst := NewSharded(1 << (shardSeed % 7))
		if err := dst.Restore(bytes.NewReader(snapshotBytes(t, src))); err != nil {
			t.Fatalf("restore: %v", err)
		}
		next := dst.NextID()
		if next <= 0 {
			return false
		}
		for _, v := range dst.ViewAll() {
			if next <= v.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestViewByStatusNeverTorn hammers a sharded store with concurrent
// mutators (recording answers under LockerFor, exactly as the queue does)
// while readers take status views, and asserts every view is internally
// consistent: Done implies the redundancy quorum is present in the copied
// answer list, Open implies it is not, and results stay ID-ordered and
// duplicate-free. A torn read — status from one moment, answers from
// another — fails the invariant.
func TestViewByStatusNeverTorn(t *testing.T) {
	const (
		nTasks     = 256
		nWriters   = 4
		redundancy = 2
	)
	s := NewSharded(8)
	for i := 1; i <= nTasks; i++ {
		tk, err := task.New(task.ID(i), task.Label, task.Payload{ImageID: i}, redundancy, time.Unix(int64(i), 0))
		if err != nil {
			t.Fatal(err)
		}
		s.Put(tk)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := fmt.Sprintf("w%d", w)
			for i := 1; i <= nTasks; i++ {
				id := task.ID(i)
				tk, err := s.Get(id)
				if err != nil {
					continue
				}
				l := s.LockerFor(id)
				l.Lock()
				// ErrWrongStatus / ErrWorkerRepeat are expected races
				// between writers; the invariant under test is the
				// reader's, not the writer's.
				_ = tk.Record(task.Answer{WorkerID: worker, Words: []int{i}}, time.Unix(int64(i), 1))
				l.Unlock()
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()

	check := func(views []task.View, st task.Status) {
		last := task.ID(0)
		for _, v := range views {
			if v.ID <= last {
				t.Errorf("ViewByStatus(%v): IDs not strictly increasing (%d after %d)", st, v.ID, last)
			}
			last = v.ID
			if v.Status != st {
				t.Errorf("ViewByStatus(%v): task %d has status %v", st, v.ID, v.Status)
			}
			if st == task.Done && len(v.Answers) < v.Redundancy {
				t.Errorf("torn view: task %d is Done with %d/%d answers", v.ID, len(v.Answers), v.Redundancy)
			}
			if st == task.Open && len(v.Answers) >= v.Redundancy {
				t.Errorf("torn view: task %d is Open with %d/%d answers", v.ID, len(v.Answers), v.Redundancy)
			}
		}
	}
	for {
		select {
		case <-done:
			if got := len(s.ViewByStatus(task.Done)); got != nTasks {
				t.Fatalf("after writers finished: %d tasks Done, want %d", got, nTasks)
			}
			return
		default:
			check(s.ViewByStatus(task.Done), task.Done)
			check(s.ViewByStatus(task.Open), task.Open)
		}
	}
}
