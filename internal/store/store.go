// Package store provides the persistence layer of the dispatch service: an
// in-memory task table with a monotonic ID allocator and JSON
// snapshot/restore, so a service can checkpoint its state to disk and pick
// up where it left off. The snapshot format is plain JSON — inspectable
// with standard tools and stable across versions that do not change the
// task schema.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"humancomp/internal/task"
)

// ErrNotFound is returned by Get for unknown task IDs.
var ErrNotFound = errors.New("store: task not found")

// Store is an in-memory task table. Safe for concurrent use.
//
// Locking discipline: mu guards the table itself AND the contents of every
// stored task. Components that mutate stored tasks in place (the queue,
// via Locker) take the write lock around each mutation, which lets View,
// ViewAll, ViewByStatus and Snapshot hand out consistent deep copies under
// the read lock. The live-pointer accessors (Get, All, ByStatus) exist for
// ownership-transfer paths — enqueueing, recovery replay — and must not be
// used to serve reads concurrent with a running queue.
type Store struct {
	mu     sync.RWMutex
	tasks  map[task.ID]*task.Task
	nextID task.ID
}

// New returns an empty store.
func New() *Store {
	return &Store{tasks: make(map[task.ID]*task.Task)}
}

// NextID allocates a fresh task ID.
func (s *Store) NextID() task.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return s.nextID
}

// Put inserts or replaces a task.
func (s *Store) Put(t *task.Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tasks[t.ID] = t
	if t.ID > s.nextID {
		s.nextID = t.ID
	}
}

// Delete removes a task; deleting an absent ID is a no-op. It is the
// rollback half of Put for submissions that fail partway.
func (s *Store) Delete(id task.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.tasks, id)
}

// Locker exposes the write lock guarding stored task contents. The queue
// holds it while recording answers or canceling, so that concurrent view
// readers (which copy under the read lock) never race with a mutation.
func (s *Store) Locker() sync.Locker { return &s.mu }

// View returns an immutable deep-copy snapshot of the task with the given
// ID, or ErrNotFound. This is the only safe way to read a task while the
// queue is running.
func (s *Store) View(id task.ID) (task.View, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tasks[id]
	if !ok {
		return task.View{}, ErrNotFound
	}
	return t.View(), nil
}

// ViewAll returns a snapshot of every task, ordered by ID.
func (s *Store) ViewAll() []task.View {
	s.mu.RLock()
	out := make([]task.View, 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, t.View())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ViewByStatus returns a snapshot of every task with the given status,
// ordered by ID.
func (s *Store) ViewByStatus(st task.Status) []task.View {
	s.mu.RLock()
	var out []task.View
	for _, t := range s.tasks {
		if t.Status == st {
			out = append(out, t.View())
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the task with the given ID or ErrNotFound.
func (s *Store) Get(id task.ID) (*task.Task, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tasks[id]
	if !ok {
		return nil, ErrNotFound
	}
	return t, nil
}

// Len returns the number of stored tasks.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tasks)
}

// All returns every live task ordered by ID. Ownership-transfer use only;
// concurrent readers must use ViewAll.
func (s *Store) All() []*task.Task {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*task.Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByStatus returns every live task with the given status, ordered by ID.
// Ownership-transfer use only (e.g. re-enqueueing open tasks at recovery);
// concurrent readers must use ViewByStatus.
func (s *Store) ByStatus(st task.Status) []*task.Task {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*task.Task
	for _, t := range s.tasks {
		if t.Status == st {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// snapshot is the JSON wire format of a store (decode side).
type snapshot struct {
	Version int          `json:"version"`
	NextID  task.ID      `json:"next_id"`
	Tasks   []*task.Task `json:"tasks"`
}

// viewSnapshot is the encode-side twin of snapshot: it carries deep-copied
// views so encoding happens entirely outside the lock, racing with nothing.
// task.View marshals identically to task.Task, so the wire format is
// unchanged.
type viewSnapshot struct {
	Version int         `json:"version"`
	NextID  task.ID     `json:"next_id"`
	Tasks   []task.View `json:"tasks"`
}

const snapshotVersion = 1

// Snapshot writes the store as JSON to w. Task state is deep-copied under
// the lock and encoded after releasing it, so a snapshot can be taken
// while the service keeps answering traffic.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	snap := viewSnapshot{Version: snapshotVersion, NextID: s.nextID, Tasks: make([]task.View, 0, len(s.tasks))}
	for _, t := range s.tasks {
		snap.Tasks = append(snap.Tasks, t.View())
	}
	s.mu.RUnlock()
	sort.Slice(snap.Tasks, func(i, j int) bool { return snap.Tasks[i].ID < snap.Tasks[j].ID })
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Restore replaces the store's contents with the snapshot read from r.
func (s *Store) Restore(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("store: unsupported snapshot version %d", snap.Version)
	}
	tasks := make(map[task.ID]*task.Task, len(snap.Tasks))
	nextID := snap.NextID
	for _, t := range snap.Tasks {
		if _, dup := tasks[t.ID]; dup {
			return fmt.Errorf("store: duplicate task ID %d in snapshot", t.ID)
		}
		tasks[t.ID] = t
		if t.ID > nextID {
			nextID = t.ID
		}
	}
	s.mu.Lock()
	s.tasks = tasks
	s.nextID = nextID
	s.mu.Unlock()
	return nil
}
