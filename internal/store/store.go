// Package store provides the persistence layer of the dispatch service: an
// in-memory task table with a monotonic ID allocator and JSON
// snapshot/restore, so a service can checkpoint its state to disk and pick
// up where it left off. The snapshot format is plain JSON — inspectable
// with standard tools and stable across versions that do not change the
// task schema.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"humancomp/internal/task"
)

// ErrNotFound is returned by Get for unknown task IDs.
var ErrNotFound = errors.New("store: task not found")

// Store is an in-memory task table. Safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	tasks  map[task.ID]*task.Task
	nextID task.ID
}

// New returns an empty store.
func New() *Store {
	return &Store{tasks: make(map[task.ID]*task.Task)}
}

// NextID allocates a fresh task ID.
func (s *Store) NextID() task.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return s.nextID
}

// Put inserts or replaces a task.
func (s *Store) Put(t *task.Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tasks[t.ID] = t
	if t.ID > s.nextID {
		s.nextID = t.ID
	}
}

// Get returns the task with the given ID or ErrNotFound.
func (s *Store) Get(id task.ID) (*task.Task, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tasks[id]
	if !ok {
		return nil, ErrNotFound
	}
	return t, nil
}

// Len returns the number of stored tasks.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tasks)
}

// All returns every task ordered by ID.
func (s *Store) All() []*task.Task {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*task.Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByStatus returns every task with the given status, ordered by ID.
func (s *Store) ByStatus(st task.Status) []*task.Task {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*task.Task
	for _, t := range s.tasks {
		if t.Status == st {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// snapshot is the JSON wire format of a store.
type snapshot struct {
	Version int          `json:"version"`
	NextID  task.ID      `json:"next_id"`
	Tasks   []*task.Task `json:"tasks"`
}

const snapshotVersion = 1

// Snapshot writes the store as JSON to w.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	snap := snapshot{Version: snapshotVersion, NextID: s.nextID, Tasks: make([]*task.Task, 0, len(s.tasks))}
	for _, t := range s.tasks {
		snap.Tasks = append(snap.Tasks, t)
	}
	s.mu.RUnlock()
	sort.Slice(snap.Tasks, func(i, j int) bool { return snap.Tasks[i].ID < snap.Tasks[j].ID })
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Restore replaces the store's contents with the snapshot read from r.
func (s *Store) Restore(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("store: unsupported snapshot version %d", snap.Version)
	}
	tasks := make(map[task.ID]*task.Task, len(snap.Tasks))
	nextID := snap.NextID
	for _, t := range snap.Tasks {
		if _, dup := tasks[t.ID]; dup {
			return fmt.Errorf("store: duplicate task ID %d in snapshot", t.ID)
		}
		tasks[t.ID] = t
		if t.ID > nextID {
			nextID = t.ID
		}
	}
	s.mu.Lock()
	s.tasks = tasks
	s.nextID = nextID
	s.mu.Unlock()
	return nil
}
