// Package store provides the persistence layer of the dispatch service: an
// in-memory task table with a monotonic ID allocator and JSON
// snapshot/restore, so a service can checkpoint its state to disk and pick
// up where it left off. The snapshot format is plain JSON — inspectable
// with standard tools and stable across versions that do not change the
// task schema.
//
// The table is sharded by task ID across a power-of-two number of
// independently locked shards (default: GOMAXPROCS rounded up), so
// concurrent writers on different tasks never contend on one global lock.
// Whole-table reads (ViewAll, ViewByStatus, Snapshot) visit one shard at a
// time — never holding two shard locks at once — and merge-sort the
// per-shard snapshots by task ID, which keeps the snapshot wire format
// byte-identical to a single-shard store over the same contents.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"humancomp/internal/task"
	"humancomp/internal/trace"
)

// ErrNotFound is returned by Get for unknown task IDs.
var ErrNotFound = errors.New("store: task not found")

// AutoShards returns the default shard count: GOMAXPROCS rounded up to the
// next power of two, capped at 64.
func AutoShards() int {
	n := shardCount(runtime.GOMAXPROCS(0))
	if n > 64 {
		n = 64
	}
	return n
}

// shardCount rounds n up to a power of two, with a floor of 1.
func shardCount(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shard is one independently locked slice of the task table.
//
// Locking discipline: mu guards the shard's map AND the contents of every
// task stored in it. Components that mutate stored tasks in place (the
// queue, via LockerFor) take the shard's write lock around each mutation,
// which lets View, ViewAll, ViewByStatus and Snapshot hand out consistent
// deep copies under the read lock. Tasks are placed by id & mask, so a
// task's stored record and the lock guarding it are determined by its ID
// alone.
type shard struct {
	mu     sync.RWMutex
	tasks  map[task.ID]*task.Task
	lockN  int64 // write-lock acquisitions, guarded by mu
	locker shardLocker
}

// shardLocker is the sync.Locker LockerFor hands out: the shard's write
// lock plus the acquisition counter behind the per-shard contention
// metrics. One lives inside each shard, so LockerFor never allocates.
type shardLocker struct {
	sh *shard
}

// Lock acquires the shard's write lock and counts the acquisition.
func (l *shardLocker) Lock() {
	l.sh.mu.Lock()
	l.sh.lockN++
}

// Unlock releases the shard's write lock.
func (l *shardLocker) Unlock() { l.sh.mu.Unlock() }

// Store is an in-memory task table. Safe for concurrent use.
type Store struct {
	shards []*shard
	mask   uint64
	nextID atomic.Int64
	rec    *trace.Recorder // lifecycle event sink; nil records nothing
}

// New returns an empty store with the default (auto) shard count.
func New() *Store { return NewSharded(0) }

// NewSharded returns an empty store with n shards, rounded up to a power
// of two; n <= 0 selects the auto default. NewSharded(1) behaves exactly
// like the historical single-lock store.
func NewSharded(n int) *Store {
	if n <= 0 {
		n = AutoShards()
	}
	n = shardCount(n)
	s := &Store{shards: make([]*shard, n), mask: uint64(n - 1)}
	for i := range s.shards {
		sh := &shard{tasks: make(map[task.ID]*task.Task)}
		sh.locker.sh = sh
		s.shards[i] = sh
	}
	return s
}

// Shards returns the number of shards the store was built with.
func (s *Store) Shards() int { return len(s.shards) }

// SetRecorder attaches a lifecycle trace recorder. It must be called
// before the store sees traffic (the core does so at construction); a nil
// recorder — the default — records nothing.
func (s *Store) SetRecorder(rec *trace.Recorder) { s.rec = rec }

// ShardLockCounts returns how many times each shard's write lock has been
// acquired for a mutation (Put, Delete, or through LockerFor), indexed by
// shard.
func (s *Store) ShardLockCounts() []int64 {
	out := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		out[i] = sh.lockN
		sh.mu.RUnlock()
	}
	return out
}

// shardFor returns the shard owning the given task ID.
func (s *Store) shardFor(id task.ID) *shard { return s.shards[uint64(id)&s.mask] }

// NextID allocates a fresh task ID. The allocator is a single atomic
// word — no lock is taken on the submit path.
func (s *Store) NextID() task.ID { return task.ID(s.nextID.Add(1)) }

// advanceNextID moves the allocator past id so future NextID calls never
// collide with an explicitly inserted or restored task.
func (s *Store) advanceNextID(id task.ID) {
	for {
		cur := s.nextID.Load()
		if int64(id) <= cur || s.nextID.CompareAndSwap(cur, int64(id)) {
			return
		}
	}
}

// Put inserts or replaces a task.
func (s *Store) Put(t *task.Task) {
	sh := s.shardFor(t.ID)
	sh.mu.Lock()
	sh.lockN++
	sh.tasks[t.ID] = t
	sh.mu.Unlock()
	s.advanceNextID(t.ID)
	s.rec.Append(trace.Event{
		TaskID: t.ID, Stage: trace.StagePersist, At: t.CreatedAt,
		Shard: int(uint64(t.ID) & s.mask),
	})
}

// PutBatch inserts or replaces many tasks, grouping them by shard so each
// shard's write lock is taken at most once per call instead of once per
// task. Per-task trace events are still emitted individually.
func (s *Store) PutBatch(ts []*task.Task) {
	if len(ts) == 0 {
		return
	}
	byShard := make(map[*shard][]*task.Task, len(s.shards))
	maxID := task.ID(0)
	for _, t := range ts {
		sh := s.shardFor(t.ID)
		byShard[sh] = append(byShard[sh], t)
		if t.ID > maxID {
			maxID = t.ID
		}
	}
	for sh, group := range byShard {
		sh.mu.Lock()
		sh.lockN++
		for _, t := range group {
			sh.tasks[t.ID] = t
		}
		sh.mu.Unlock()
	}
	s.advanceNextID(maxID)
	for _, t := range ts {
		s.rec.Append(trace.Event{
			TaskID: t.ID, Stage: trace.StagePersist, At: t.CreatedAt,
			Shard: int(uint64(t.ID) & s.mask),
		})
	}
}

// Delete removes a task; deleting an absent ID is a no-op. It is the
// rollback half of Put for submissions that fail partway.
func (s *Store) Delete(id task.ID) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.lockN++
	delete(sh.tasks, id)
	sh.mu.Unlock()
}

// LockerFor exposes the write lock of the shard guarding the given task's
// contents. The queue holds it while recording answers or canceling, so
// that concurrent view readers (which copy under the shard's read lock)
// never race with a mutation. Callers must never hold two shard locks at
// once; each mutation touches exactly one task, hence exactly one shard.
func (s *Store) LockerFor(id task.ID) sync.Locker { return &s.shardFor(id).locker }

// View returns an immutable deep-copy snapshot of the task with the given
// ID, or ErrNotFound. This is the only safe way to read a task while the
// queue is running.
func (s *Store) View(id task.ID) (task.View, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	t, ok := sh.tasks[id]
	if !ok {
		return task.View{}, ErrNotFound
	}
	return t.View(), nil
}

// ViewAll returns a snapshot of every task, ordered by ID. Shards are
// visited one at a time (no stop-the-world lock); the merged result is
// sorted by ID afterwards, matching the single-shard ordering exactly.
func (s *Store) ViewAll() []task.View {
	var out []task.View
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, t := range sh.tasks {
			out = append(out, t.View())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ViewByStatus returns a snapshot of every task with the given status,
// ordered by ID.
func (s *Store) ViewByStatus(st task.Status) []task.View {
	var out []task.View
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, t := range sh.tasks {
			if t.Status == st {
				out = append(out, t.View())
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the task with the given ID or ErrNotFound.
func (s *Store) Get(id task.ID) (*task.Task, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	t, ok := sh.tasks[id]
	if !ok {
		return nil, ErrNotFound
	}
	return t, nil
}

// Len returns the number of stored tasks.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.tasks)
		sh.mu.RUnlock()
	}
	return n
}

// All returns every live task ordered by ID. Ownership-transfer use only;
// concurrent readers must use ViewAll.
func (s *Store) All() []*task.Task {
	var out []*task.Task
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, t := range sh.tasks {
			out = append(out, t)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByStatus returns every live task with the given status, ordered by ID.
// Ownership-transfer use only (e.g. re-enqueueing open tasks at recovery);
// concurrent readers must use ViewByStatus.
func (s *Store) ByStatus(st task.Status) []*task.Task {
	var out []*task.Task
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, t := range sh.tasks {
			if t.Status == st {
				out = append(out, t)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// snapshot is the JSON wire format of a store (decode side).
type snapshot struct {
	Version int          `json:"version"`
	NextID  task.ID      `json:"next_id"`
	Tasks   []*task.Task `json:"tasks"`
	// Calibration is an opaque sidecar the quality plane stores alongside
	// task state (gold expectations, reputation tallies, estimator state).
	// The store carries it verbatim; older snapshots simply lack the field
	// and older readers ignore it.
	Calibration json.RawMessage `json:"calibration,omitempty"`
}

// viewSnapshot is the encode-side twin of snapshot: it carries deep-copied
// views so encoding happens entirely outside the locks, racing with
// nothing. task.View marshals identically to task.Task, so the wire format
// is unchanged.
type viewSnapshot struct {
	Version     int             `json:"version"`
	NextID      task.ID         `json:"next_id"`
	Tasks       []task.View     `json:"tasks"`
	Calibration json.RawMessage `json:"calibration,omitempty"`
}

const snapshotVersion = 1

// Snapshot writes the store as JSON to w. Task state is deep-copied one
// shard at a time under each shard's read lock and encoded after releasing
// them, so a snapshot can be taken while the service keeps answering
// traffic, and no global stop-the-world lock exists. The post-merge sort
// by task ID keeps the wire format byte-identical to a one-shard store
// over the same contents.
func (s *Store) Snapshot(w io.Writer) error { return s.SnapshotWith(w, nil) }

// SnapshotWith is Snapshot with an opaque calibration sidecar embedded in
// the same document, so task state and quality-plane state are captured
// atomically in one file.
func (s *Store) SnapshotWith(w io.Writer, calibration json.RawMessage) error {
	snap := viewSnapshot{Version: snapshotVersion, NextID: task.ID(s.nextID.Load()), Calibration: calibration}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, t := range sh.tasks {
			snap.Tasks = append(snap.Tasks, t.View())
		}
		sh.mu.RUnlock()
	}
	if snap.Tasks == nil {
		snap.Tasks = []task.View{}
	}
	sort.Slice(snap.Tasks, func(i, j int) bool { return snap.Tasks[i].ID < snap.Tasks[j].ID })
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Restore replaces the store's contents with the snapshot read from r and
// seeds the ID allocator past both the snapshot's recorded next_id and the
// largest restored task ID, so post-restore NextID calls never collide.
func (s *Store) Restore(r io.Reader) error {
	_, err := s.RestoreWith(r)
	return err
}

// RestoreWith is Restore returning the snapshot's calibration sidecar (nil
// when the snapshot predates it) for the quality plane to rebuild from.
func (s *Store) RestoreWith(r io.Reader) (json.RawMessage, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d", snap.Version)
	}
	fresh := make([]map[task.ID]*task.Task, len(s.shards))
	for i := range fresh {
		fresh[i] = make(map[task.ID]*task.Task)
	}
	nextID := snap.NextID
	seen := make(map[task.ID]bool, len(snap.Tasks))
	for _, t := range snap.Tasks {
		if seen[t.ID] {
			return nil, fmt.Errorf("store: duplicate task ID %d in snapshot", t.ID)
		}
		seen[t.ID] = true
		fresh[uint64(t.ID)&s.mask][t.ID] = t
		if t.ID > nextID {
			nextID = t.ID
		}
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		sh.tasks = fresh[i]
		sh.mu.Unlock()
	}
	s.nextID.Store(int64(nextID))
	return snap.Calibration, nil
}
