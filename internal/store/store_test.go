package store

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"humancomp/internal/task"
)

var t0 = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

func mk(t *testing.T, s *Store, kind task.Kind) *task.Task {
	t.Helper()
	tk, err := task.New(s.NextID(), kind, task.Payload{ImageID: 1}, 2, t0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(tk)
	return tk
}

func TestPutGet(t *testing.T) {
	s := New()
	tk := mk(t, s, task.Label)
	got, err := s.Get(tk.ID)
	if err != nil || got != tk {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := s.Get(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing task err = %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestNextIDMonotonic(t *testing.T) {
	s := New()
	prev := task.ID(0)
	for i := 0; i < 100; i++ {
		id := s.NextID()
		if id <= prev {
			t.Fatalf("NextID not monotonic: %d after %d", id, prev)
		}
		prev = id
	}
}

func TestPutAdvancesAllocator(t *testing.T) {
	s := New()
	tk, _ := task.New(50, task.Label, task.Payload{}, 1, t0)
	s.Put(tk)
	if id := s.NextID(); id <= 50 {
		t.Fatalf("NextID = %d after Put(50)", id)
	}
}

func TestAllSortedAndByStatus(t *testing.T) {
	s := New()
	a := mk(t, s, task.Label)
	b := mk(t, s, task.Locate)
	_ = b.Cancel(t0)
	all := s.All()
	if len(all) != 2 || all[0].ID > all[1].ID {
		t.Fatalf("All = %v", all)
	}
	open := s.ByStatus(task.Open)
	if len(open) != 1 || open[0] != a {
		t.Fatalf("ByStatus(Open) = %v", open)
	}
	if got := s.ByStatus(task.Canceled); len(got) != 1 || got[0] != b {
		t.Fatalf("ByStatus(Canceled) = %v", got)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := New()
	a := mk(t, s, task.Label)
	if err := a.Record(task.Answer{WorkerID: "w", Words: []int{3, 4}}, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	mk(t, s, task.Transcribe)

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != s.Len() {
		t.Fatalf("restored %d tasks, want %d", restored.Len(), s.Len())
	}
	got, err := restored.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != a.Kind || len(got.Answers) != 1 || got.Answers[0].WorkerID != "w" {
		t.Fatalf("restored task lost data: %+v", got)
	}
	if len(got.Answers[0].Words) != 2 {
		t.Fatal("answer words lost")
	}
	// Allocator continues past restored IDs.
	if id := restored.NextID(); id <= a.ID {
		t.Fatalf("NextID = %d after restore", id)
	}
}

func TestRestoreRejectsBadInput(t *testing.T) {
	s := New()
	if err := s.Restore(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if err := s.Restore(strings.NewReader(`{"version": 99, "tasks": []}`)); err == nil {
		t.Fatal("bad version accepted")
	}
	dup := `{"version":1,"next_id":2,"tasks":[{"id":1,"kind":0,"redundancy":1},{"id":1,"kind":0,"redundancy":1}]}`
	if err := s.Restore(strings.NewReader(dup)); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestRestoreReplacesContents(t *testing.T) {
	s := New()
	mk(t, s, task.Label)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	mk(t, s, task.Locate) // extra task not in snapshot
	if err := s.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after restore, want snapshot contents only", s.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tk, err := task.New(s.NextID(), task.Label, task.Payload{}, 1, t0)
				if err != nil {
					t.Error(err)
					return
				}
				s.Put(tk)
				if _, err := s.Get(tk.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != 1600 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestViewDeepCopy(t *testing.T) {
	s := New()
	tk := mk(t, s, task.Label)
	if err := tk.Record(task.Answer{WorkerID: "a", Words: []int{5}}, t0); err != nil {
		t.Fatal(err)
	}
	v, err := s.View(tk.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Later task mutation is invisible to the already-taken view …
	if err := tk.Record(task.Answer{WorkerID: "b", Words: []int{6}}, t0); err != nil {
		t.Fatal(err)
	}
	if len(v.Answers) != 1 || v.Answers[0].Words[0] != 5 {
		t.Fatalf("view not isolated: %+v", v)
	}
	// … and view mutation never reaches the store.
	v.Answers[0].Words[0] = 99
	got, _ := s.Get(tk.ID)
	if got.Answers[0].Words[0] != 5 {
		t.Fatalf("store sees view mutation: %+v", got)
	}
	if _, err := s.View(9999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("View(unknown): %v", err)
	}
}

func TestViewAllAndByStatus(t *testing.T) {
	s := New()
	a := mk(t, s, task.Label)
	b := mk(t, s, task.Judge)
	if err := b.Cancel(t0); err != nil {
		t.Fatal(err)
	}
	all := s.ViewAll()
	if len(all) != 2 || all[0].ID != a.ID || all[1].ID != b.ID {
		t.Fatalf("ViewAll = %+v", all)
	}
	open := s.ViewByStatus(task.Open)
	if len(open) != 1 || open[0].ID != a.ID {
		t.Fatalf("ViewByStatus(open) = %+v", open)
	}
	canceled := s.ViewByStatus(task.Canceled)
	if len(canceled) != 1 || canceled[0].ID != b.ID {
		t.Fatalf("ViewByStatus(canceled) = %+v", canceled)
	}
}
