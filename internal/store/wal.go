package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"humancomp/internal/task"
)

// WAL format v2: an 8-byte file header (magic "HCWL", little-endian uint16
// version, two reserved zero bytes) followed by length-prefixed,
// CRC32C-checksummed records:
//
//	uint32 LE  payload length
//	uint32 LE  CRC32C (Castagnoli) of the payload
//	payload    one JSON-encoded Event
//
// The checksum makes every torn or bit-flipped record detectable, so
// recovery scans forward, applies the longest valid prefix, and truncates
// at the first record that fails to frame or verify — a crash mid-append
// can only ever lose the one record that was never acknowledged. Legacy v1
// logs (bare JSON lines, no header) are replayed transparently; a v1 file
// that later gained a v2 section (an in-place upgrade) switches formats at
// the header.
var walMagic = [8]byte{'H', 'C', 'W', 'L', 2, 0, 0, 0}

// walRecordHeader is the per-record framing overhead: length + checksum.
const walRecordHeader = 8

// maxWALRecord bounds a single record payload; a length prefix above it is
// treated as corruption, not an allocation request.
const maxWALRecord = 16 << 20

// castagnoli is the CRC32C polynomial table, shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncInterval (the default) acknowledges an append once the bytes are
	// handed to the OS and fsyncs in the background every SyncInterval: a
	// process crash loses nothing, a machine crash loses at most one
	// interval.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs before acknowledging. Concurrent appends share one
	// fsync (group commit): the first writer into the sync section flushes
	// everything written so far, and the rest observe their record already
	// durable and return without their own fsync.
	SyncAlways
	// SyncNever never fsyncs; durability is whatever the OS page cache
	// provides. For benchmarks and tests.
	SyncNever
)

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown sync policy %q (want always, interval or never)", s)
}

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// Syncer is the subset of *os.File the WAL needs for durability.
type Syncer interface{ Sync() error }

// ErrWALClosed is returned by Append/AppendBatch after Close. Callers that
// race shutdown (a late request, a replication tap) get a stable sentinel
// instead of a buffered-writer error from a half-torn-down log.
var ErrWALClosed = errors.New("store: wal closed")

// WALOptions configures a write-ahead log writer.
type WALOptions struct {
	// Policy selects the fsync discipline. Without a Syncer (and the
	// writer not being one), every policy degrades to flush-only.
	Policy SyncPolicy
	// Interval is the background fsync period under SyncInterval;
	// 0 selects 100ms.
	Interval time.Duration
	// Syncer overrides fsync target detection; nil type-asserts the
	// writer itself.
	Syncer Syncer
	// OnRecord, when set, is called once per appended record after the
	// record has been flushed to the OS (i.e. once the append will be
	// acknowledged), in sequence order, with the record's 1-based sequence
	// number and its framed bytes (length prefix, checksum, payload). The
	// frame is a fresh copy the callee may retain. Called with the WAL's
	// append lock held: keep it short — replication uses it to feed an
	// in-memory tail, never to block on I/O.
	OnRecord func(seq int64, frame []byte)
}

// WAL is a write-ahead log of task events: every submission, answer and
// cancellation is appended as one checksummed record before it is
// acknowledged, so a crashed service replays the log and loses nothing
// since the last snapshot. Snapshots (Store.Snapshot) bound replay length;
// the WAL covers the tail.
type WAL struct {
	mu       sync.Mutex
	w        *bufio.Writer
	n        int64
	bytes    int64
	wroteHdr bool
	writeSeq int64 // appends flushed to the OS
	lastErr  error // most recent append/sync failure; nil once healthy again
	closed   bool  // Close called; further appends fail with ErrWALClosed

	policy   SyncPolicy
	syncer   Syncer
	onRecord func(seq int64, frame []byte)

	// syncMu serializes fsyncs for group commit; syncedSeq (guarded by it)
	// is the highest writeSeq known durable.
	syncMu    sync.Mutex
	syncedSeq int64
	dirty     bool // flushed bytes not yet fsynced, guarded by mu

	failures atomic.Int64 // appends or syncs that returned an error

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// EventKind tags a WAL record.
type EventKind string

// WAL record kinds.
const (
	EventSubmit EventKind = "submit"
	EventAnswer EventKind = "answer"
	EventCancel EventKind = "cancel"
	// EventFinish marks a quality-plane early completion: the task reached
	// its posterior-confidence target before its full redundancy.
	EventFinish EventKind = "finish"
)

// Event is one WAL record. Exactly the fields matching Kind are set.
type Event struct {
	Kind EventKind `json:"kind"`
	At   time.Time `json:"at"`

	Task   *task.Task   `json:"task,omitempty"`    // submit: the full new task
	TaskID task.ID      `json:"task_id,omitempty"` // answer, cancel, finish
	Answer *task.Answer `json:"answer,omitempty"`  // answer
	// Gold carries a submitted gold probe's expected answer, so the
	// calibration contract — this task checks workers — survives replay.
	Gold *task.Answer `json:"gold,omitempty"` // submit (gold probes only)
}

// NewWAL returns a log appending v2 records to w with no fsync of its own
// (w is usually a buffer or an already-durable sink). Use NewWALWith for a
// file with a durability policy.
func NewWAL(w io.Writer) *WAL { return NewWALWith(w, WALOptions{Policy: SyncNever}) }

// NewWALWith returns a log appending to w under the given durability
// options. When w is an *os.File (or anything with Sync), the policy's
// fsyncs target it; otherwise fsync degrades to a no-op. Call Close to
// stop the background sync loop and flush the tail.
func NewWALWith(w io.Writer, opts WALOptions) *WAL {
	l := &WAL{
		w:        bufio.NewWriter(w),
		policy:   opts.Policy,
		syncer:   opts.Syncer,
		onRecord: opts.OnRecord,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if l.syncer == nil {
		l.syncer, _ = w.(Syncer)
	}
	if l.syncer != nil && l.policy == SyncInterval {
		interval := opts.Interval
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		go l.syncLoop(interval)
	} else {
		close(l.done)
	}
	return l
}

// Append writes one event, flushes it to the OS and — under SyncAlways —
// fsyncs (sharing the fsync with concurrent appends) before returning.
// An event is acknowledged if and only if Append returns nil.
func (l *WAL) Append(e Event) error {
	enc, err := encodeEvent(e)
	if err != nil {
		return err
	}
	return l.appendPayloads([][]byte{enc})
}

// AppendBatch writes many events as one group: all records are framed into
// the write buffer and handed to the OS with a single flush, and under
// SyncAlways the whole group shares a single fsync (composing with the
// group-commit path, so concurrent batches can share that fsync too). The
// batch is acknowledged as a unit — a nil return means every event is on
// the log; a non-nil return means none of them is acknowledged, and any
// partially written tail is cut off by recovery like any torn record.
func (l *WAL) AppendBatch(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	payloads := make([][]byte, len(events))
	for i, e := range events {
		enc, err := encodeEvent(e)
		if err != nil {
			return err
		}
		payloads[i] = enc
	}
	return l.appendPayloads(payloads)
}

// encodeEvent validates and marshals one event into a record payload.
func encodeEvent(e Event) ([]byte, error) {
	if err := validateEvent(e); err != nil {
		return nil, err
	}
	enc, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("store: encoding wal event: %w", err)
	}
	if len(enc) > maxWALRecord {
		return nil, fmt.Errorf("store: wal record of %d bytes exceeds limit", len(enc))
	}
	return enc, nil
}

// AppendObserved is Append, additionally reporting where the time went:
// write covers the wait for the write lock plus framing, buffered write
// and flush; sync is the fsync-group wait (zero except under SyncAlways).
// The span plane uses the split to record wal.append and wal.fsync as
// separate child spans.
func (l *WAL) AppendObserved(e Event) (write, sync time.Duration, err error) {
	enc, err := encodeEvent(e)
	if err != nil {
		return 0, 0, err
	}
	return l.appendPayloadsTimed([][]byte{enc}, true)
}

// AppendBatchObserved is AppendBatch with AppendObserved's timing split.
func (l *WAL) AppendBatchObserved(events []Event) (write, sync time.Duration, err error) {
	if len(events) == 0 {
		return 0, 0, nil
	}
	payloads := make([][]byte, len(events))
	for i, e := range events {
		enc, err := encodeEvent(e)
		if err != nil {
			return 0, 0, err
		}
		payloads[i] = enc
	}
	return l.appendPayloadsTimed(payloads, true)
}

// appendPayloads frames and writes the encoded events under one lock
// acquisition, one flush and (under SyncAlways) one shared fsync.
func (l *WAL) appendPayloads(payloads [][]byte) error {
	_, _, err := l.appendPayloadsTimed(payloads, false)
	return err
}

// appendPayloadsTimed is the shared append path; timed selects whether
// the write/sync phases are clocked (untraced appends skip the
// time.Now calls entirely).
func (l *WAL) appendPayloadsTimed(payloads [][]byte, timed bool) (write, sync time.Duration, err error) {
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, 0, ErrWALClosed
	}
	if err := l.writeRecords(payloads); err != nil {
		l.lastErr = err
		l.mu.Unlock()
		l.failures.Add(1)
		return 0, 0, err
	}
	l.lastErr = nil
	seq := l.writeSeq
	l.mu.Unlock()
	if timed {
		write = time.Since(t0)
	}
	if l.policy == SyncAlways && l.syncer != nil {
		var t1 time.Time
		if timed {
			t1 = time.Now()
		}
		if err := l.syncTo(seq); err != nil {
			l.mu.Lock()
			l.lastErr = err
			l.mu.Unlock()
			l.failures.Add(1)
			return write, 0, err
		}
		if timed {
			sync = time.Since(t1)
		}
	}
	return write, sync, nil
}

// writeRecords frames and writes the payloads with a single trailing
// flush. Caller holds mu.
func (l *WAL) writeRecords(payloads [][]byte) error {
	if !l.wroteHdr {
		if _, err := l.w.Write(walMagic[:]); err != nil {
			return err
		}
		l.wroteHdr = true
		l.bytes += int64(len(walMagic))
	}
	var frames [][]byte // retained copies for the OnRecord tap, if installed
	if l.onRecord != nil {
		frames = make([][]byte, 0, len(payloads))
	}
	for _, payload := range payloads {
		if frames != nil {
			frame := make([]byte, walRecordHeader+len(payload))
			binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
			copy(frame[walRecordHeader:], payload)
			if _, err := l.w.Write(frame); err != nil {
				return err
			}
			frames = append(frames, frame)
			continue
		}
		var hdr [walRecordHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		if _, err := l.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := l.w.Write(payload); err != nil {
			return err
		}
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	n := int64(len(payloads))
	l.n += n
	base := l.writeSeq
	l.writeSeq += n
	for _, payload := range payloads {
		l.bytes += walRecordHeader + int64(len(payload))
	}
	l.dirty = true
	for i, frame := range frames {
		l.onRecord(base+int64(i)+1, frame)
	}
	return nil
}

// syncTo makes every append up to seq durable, batching concurrent callers
// behind one fsync: whoever holds syncMu first syncs the current tail, and
// later callers see syncedSeq already past their record.
func (l *WAL) syncTo(seq int64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncedSeq >= seq {
		return nil
	}
	l.mu.Lock()
	cur := l.writeSeq
	l.dirty = false
	l.mu.Unlock()
	if err := l.syncer.Sync(); err != nil {
		return err
	}
	l.syncedSeq = cur
	return nil
}

// syncLoop is the SyncInterval background fsync.
func (l *WAL) syncLoop(interval time.Duration) {
	defer close(l.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			dirty := l.dirty
			seq := l.writeSeq
			l.mu.Unlock()
			if !dirty {
				continue
			}
			if err := l.syncTo(seq); err != nil {
				l.mu.Lock()
				l.lastErr = err
				l.mu.Unlock()
				l.failures.Add(1)
			}
		case <-l.stop:
			return
		}
	}
}

// Close stops the background sync loop and performs a final flush+fsync.
// It does not close the underlying writer. Appends after Close fail with
// ErrWALClosed.
func (l *WAL) Close() error {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
	l.mu.Lock()
	l.closed = true
	err := l.w.Flush()
	l.mu.Unlock()
	if l.syncer != nil && l.policy != SyncNever {
		if serr := l.syncer.Sync(); err == nil {
			err = serr
		}
	}
	return err
}

// Len returns the number of events appended through this WAL instance.
func (l *WAL) Len() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// LastSeq returns the sequence number of the newest record flushed to the
// OS: the count of acknowledged appends through this WAL instance. Because
// the service truncates its WAL at every snapshot, sequence N is the N-th
// record in the current file — the contract the replication stream's
// from=<seq> cursor relies on.
func (l *WAL) LastSeq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeSeq
}

// Size returns the number of bytes appended through this WAL instance
// (header and framing included). It measures log growth since open, not
// the size of any pre-existing file contents.
func (l *WAL) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Healthy reports whether the write path is working: true until an append
// or fsync fails, true again once a later append succeeds. The service's
// readiness probe degrades on false.
func (l *WAL) Healthy() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr == nil
}

// Err returns the most recent append/sync failure, or nil while healthy.
func (l *WAL) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// Failures returns how many appends or fsyncs have returned an error.
func (l *WAL) Failures() int64 { return l.failures.Load() }

func validateEvent(e Event) error {
	switch e.Kind {
	case EventSubmit:
		if e.Task == nil {
			return errors.New("store: submit event without task")
		}
	case EventAnswer:
		if e.Answer == nil || e.TaskID == 0 {
			return errors.New("store: answer event without answer or task id")
		}
	case EventCancel:
		if e.TaskID == 0 {
			return errors.New("store: cancel event without task id")
		}
	case EventFinish:
		if e.TaskID == 0 {
			return errors.New("store: finish event without task id")
		}
	default:
		return fmt.Errorf("store: unknown wal event kind %q", e.Kind)
	}
	return nil
}

// ReplayStats describes one recovery pass over a log.
type ReplayStats struct {
	// Applied counts events replayed onto the store.
	Applied int
	// GoodBytes is the offset just past the last fully applied record —
	// the truncation point when the tail is damaged.
	GoodBytes int64
	// TruncatedBytes counts bytes after GoodBytes that failed to frame,
	// checksum or decode and were dropped. Non-zero means the log ended in
	// a torn or corrupt record (the usual crash artifact).
	TruncatedBytes int64
	// LegacyEvents counts events applied from v1 JSON-line sections.
	LegacyEvents int
}

// ReplayWAL applies every valid event from r onto the store, in order. It
// reads both formats — v2 checksummed records and legacy v1 JSON lines —
// switching at a v2 header if a v1 log was upgraded in place. Replay stops
// at the first record that fails to frame, checksum or decode; everything
// before it is applied, everything from it on is reported in
// TruncatedBytes, and no error is returned for damage (an unacknowledged
// tail is dropped by design). A structurally valid record that fails to
// apply (an answer to a task the log never submitted, a duplicate submit)
// is real inconsistency, not tearing, and fails replay with an error.
func ReplayWAL(r io.Reader, s *Store) (ReplayStats, error) {
	return ReplayWALObserved(r, s, nil)
}

// ReplayWALObserved is ReplayWAL with a hook: obs (when non-nil) is called
// with every event after it has been applied to the store, in log order.
// The quality plane uses it to rebuild calibration state — which tasks are
// gold probes, which answers scored against them, which tasks finished
// early — that lives outside the task store proper.
func ReplayWALObserved(r io.Reader, s *Store, obs func(Event)) (ReplayStats, error) {
	apply := func(e Event) error {
		if err := applyEvent(s, e); err != nil {
			return err
		}
		if obs != nil {
			obs(e)
		}
		return nil
	}
	br := bufio.NewReaderSize(r, 64*1024)
	var st ReplayStats
	for {
		head, err := br.Peek(len(walMagic))
		if len(head) == 0 {
			// Clean end of log (or an unreadable source; surface the
			// latter).
			if err != nil && err != io.EOF {
				return st, err
			}
			return st, nil
		}
		if bytes.Equal(head, walMagic[:]) {
			return replayV2(br, apply, st)
		}
		if len(head) >= 4 && bytes.Equal(head[:4], walMagic[:4]) {
			// A foreign or future "HCWL" header version: don't guess at
			// its framing, treat the section as unreadable tail.
			st, _, err := discardTail(br, st, 0)
			return st, err
		}
		if v2RecordAt(br) {
			// A v2 record stream without the file header: a log tail cut
			// at a record boundary (snapshot + tail replay). The CRC has
			// already vouched for the first record.
			return replayV2Records(br, apply, st)
		}
		if len(head) < len(walMagic) && !bytes.ContainsRune(head, '\n') {
			// Short tail that is neither a complete header nor a complete
			// v1 line: torn.
			st, _, err := discardTail(br, st, 0)
			return st, err
		}
		var ok bool
		st, ok, err = replayV1Line(br, apply, st)
		if !ok || err != nil {
			return st, err
		}
	}
}

// replayV1Line consumes one legacy JSON line. ok=false ends replay (stats
// already account for the tail).
func replayV1Line(br *bufio.Reader, apply func(Event) error, st ReplayStats) (ReplayStats, bool, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		// No trailing newline: torn final line, never acknowledged.
		st.TruncatedBytes += int64(len(line))
		return st, false, nil
	}
	trimmed := bytes.TrimSpace(line)
	if len(trimmed) == 0 {
		st.GoodBytes += int64(len(line))
		return st, true, nil
	}
	var e Event
	if err := json.Unmarshal(trimmed, &e); err != nil {
		// Corrupt line: stop here, drop it and everything after.
		final, _, derr := discardTail(br, st, int64(len(line)))
		return final, false, derr
	}
	if err := apply(e); err != nil {
		return st, false, fmt.Errorf("store: wal event %d: %w", st.Applied+1, err)
	}
	st.Applied++
	st.LegacyEvents++
	st.GoodBytes += int64(len(line))
	return st, true, nil
}

// replayV2 consumes a v2 section: header then records until EOF or the
// first damaged record.
func replayV2(br *bufio.Reader, apply func(Event) error, st ReplayStats) (ReplayStats, error) {
	if _, err := br.Discard(len(walMagic)); err != nil {
		return st, err
	}
	st.GoodBytes += int64(len(walMagic))
	return replayV2Records(br, apply, st)
}

// replayV2Records decodes length-prefixed checksummed records until the
// stream ends (cleanly or torn) or a record fails verification.
func replayV2Records(br *bufio.Reader, apply func(Event) error, st ReplayStats) (ReplayStats, error) {
	for {
		var hdr [walRecordHeader]byte
		n, err := io.ReadFull(br, hdr[:])
		if err == io.EOF {
			return st, nil // clean end
		}
		if err == io.ErrUnexpectedEOF {
			st.TruncatedBytes += int64(n)
			return st, nil // torn record header
		}
		if err != nil {
			return st, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxWALRecord {
			st, _, err := discardTail(br, st, walRecordHeader)
			return st, err
		}
		payload := make([]byte, length)
		pn, err := io.ReadFull(br, payload)
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			st.TruncatedBytes += walRecordHeader + int64(pn)
			return st, nil // torn payload
		}
		if err != nil {
			return st, err
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			st, _, err := discardTail(br, st, walRecordHeader+int64(length))
			return st, err
		}
		var e Event
		if err := json.Unmarshal(payload, &e); err != nil {
			st, _, err := discardTail(br, st, walRecordHeader+int64(length))
			return st, err
		}
		if err := apply(e); err != nil {
			return st, fmt.Errorf("store: wal event %d: %w", st.Applied+1, err)
		}
		st.Applied++
		st.GoodBytes += walRecordHeader + int64(length)
	}
}

// v2RecordAt reports whether br is positioned at a verifiable v2 record:
// a sane length prefix whose full payload fits the peek window and whose
// checksum matches. Used to recognize headerless record streams; a false
// answer only means "not provably v2", and replay falls back to the v1
// path, which treats unparsable bytes as truncated tail.
func v2RecordAt(br *bufio.Reader) bool {
	hdr, err := br.Peek(walRecordHeader)
	if err != nil {
		return false
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length == 0 || length > maxWALRecord {
		return false
	}
	full, err := br.Peek(walRecordHeader + int(length))
	if err != nil {
		// Record longer than the buffered window (or stream ends inside
		// it): cannot verify, don't guess.
		return false
	}
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	return crc32.Checksum(full[walRecordHeader:], castagnoli) == sum
}

// discardTail counts `consumed` already-read bytes plus everything left in
// br as truncated and ends replay.
func discardTail(br *bufio.Reader, st ReplayStats, consumed int64) (ReplayStats, bool, error) {
	rest, err := io.Copy(io.Discard, br)
	st.TruncatedBytes += consumed + rest
	return st, false, err
}

// RecoverWAL replays f onto the store and truncates the file to the last
// fully applied record, so the next append continues a clean log. This is
// the boot path for a WAL that survived a crash: the longest valid prefix
// is applied, the torn or corrupt tail (never acknowledged) is cut off,
// and the stats report both so they can be exported as metrics.
func RecoverWAL(f *os.File, s *Store) (ReplayStats, error) {
	return RecoverWALObserved(f, s, nil)
}

// RecoverWALObserved is RecoverWAL with the same event hook as
// ReplayWALObserved.
func RecoverWALObserved(f *os.File, s *Store, obs func(Event)) (ReplayStats, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return ReplayStats{}, err
	}
	st, err := ReplayWALObserved(f, s, obs)
	if err != nil {
		return st, err
	}
	if st.TruncatedBytes > 0 {
		if err := f.Truncate(st.GoodBytes); err != nil {
			return st, fmt.Errorf("store: truncating wal tail: %w", err)
		}
	}
	if _, err := f.Seek(st.GoodBytes, io.SeekStart); err != nil {
		return st, err
	}
	return st, nil
}

// ApplyEvent applies one decoded WAL event onto the store under the same
// rules as replay: duplicate submits and answers to unknown tasks are real
// inconsistency and fail. Replication followers use it to apply records one
// at a time as they arrive, instead of replaying a whole log.
func ApplyEvent(s *Store, e Event) error { return applyEvent(s, e) }

func applyEvent(s *Store, e Event) error {
	if err := validateEvent(e); err != nil {
		return err
	}
	switch e.Kind {
	case EventSubmit:
		if _, err := s.Get(e.Task.ID); err == nil {
			return fmt.Errorf("duplicate submit for task %d", e.Task.ID)
		}
		s.Put(e.Task)
	case EventAnswer:
		t, err := s.Get(e.TaskID)
		if err != nil {
			return err
		}
		if err := t.Record(*e.Answer, e.At); err != nil {
			return err
		}
	case EventCancel:
		t, err := s.Get(e.TaskID)
		if err != nil {
			return err
		}
		if err := t.Cancel(e.At); err != nil {
			return err
		}
	case EventFinish:
		t, err := s.Get(e.TaskID)
		if err != nil {
			return err
		}
		// A finish on an already-Done task is benign: the answer that was
		// journaled just before it may itself have met redundancy.
		if t.Status == task.Done {
			return nil
		}
		if err := t.Finish(e.At); err != nil {
			return err
		}
	}
	return nil
}
