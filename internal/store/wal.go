package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"humancomp/internal/task"
)

// WAL is a write-ahead log of task events: every submission, answer and
// cancellation is appended as one JSON line before it is acknowledged, so a
// crashed service replays the log and loses nothing since the last
// snapshot. Snapshots (Store.Snapshot) bound replay length; the WAL covers
// the tail.
type WAL struct {
	mu    sync.Mutex
	w     *bufio.Writer
	n     int64
	bytes int64
}

// EventKind tags a WAL record.
type EventKind string

// WAL record kinds.
const (
	EventSubmit EventKind = "submit"
	EventAnswer EventKind = "answer"
	EventCancel EventKind = "cancel"
)

// Event is one WAL record. Exactly the fields matching Kind are set.
type Event struct {
	Kind EventKind `json:"kind"`
	At   time.Time `json:"at"`

	Task   *task.Task   `json:"task,omitempty"`    // submit: the full new task
	TaskID task.ID      `json:"task_id,omitempty"` // answer, cancel
	Answer *task.Answer `json:"answer,omitempty"`  // answer
}

// NewWAL returns a log appending to w.
func NewWAL(w io.Writer) *WAL {
	return &WAL{w: bufio.NewWriter(w)}
}

// Append writes one event and flushes it. The write is acknowledged only
// after the buffered writer has handed the bytes to the underlying writer.
func (l *WAL) Append(e Event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := validateEvent(e); err != nil {
		return err
	}
	enc, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encoding wal event: %w", err)
	}
	if _, err := l.w.Write(append(enc, '\n')); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.n++
	l.bytes += int64(len(enc)) + 1
	return nil
}

// Len returns the number of events appended through this WAL instance.
func (l *WAL) Len() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Size returns the number of bytes appended through this WAL instance
// (newlines included). It measures log growth since open, not the size of
// any pre-existing file contents.
func (l *WAL) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

func validateEvent(e Event) error {
	switch e.Kind {
	case EventSubmit:
		if e.Task == nil {
			return errors.New("store: submit event without task")
		}
	case EventAnswer:
		if e.Answer == nil || e.TaskID == 0 {
			return errors.New("store: answer event without answer or task id")
		}
	case EventCancel:
		if e.TaskID == 0 {
			return errors.New("store: cancel event without task id")
		}
	default:
		return fmt.Errorf("store: unknown wal event kind %q", e.Kind)
	}
	return nil
}

// ReplayWAL applies every event from r onto the store, in order. A record
// that fails to apply (for example an answer to a task that already
// finished in the snapshot) stops replay with an error describing the line;
// a truncated trailing line — the usual crash artifact — is tolerated and
// ends replay cleanly. It returns the number of applied events.
func ReplayWAL(r io.Reader, s *Store) (int, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	applied := 0
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			// A torn final line means the process died mid-append; the
			// event was never acknowledged, so dropping it is correct.
			return applied, nil
		}
		if err := applyEvent(s, e); err != nil {
			return applied, fmt.Errorf("store: wal event %d: %w", applied+1, err)
		}
		applied++
	}
	if err := scanner.Err(); err != nil {
		return applied, err
	}
	return applied, nil
}

func applyEvent(s *Store, e Event) error {
	if err := validateEvent(e); err != nil {
		return err
	}
	switch e.Kind {
	case EventSubmit:
		if _, err := s.Get(e.Task.ID); err == nil {
			return fmt.Errorf("duplicate submit for task %d", e.Task.ID)
		}
		s.Put(e.Task)
	case EventAnswer:
		t, err := s.Get(e.TaskID)
		if err != nil {
			return err
		}
		if err := t.Record(*e.Answer, e.At); err != nil {
			return err
		}
	case EventCancel:
		t, err := s.Get(e.TaskID)
		if err != nil {
			return err
		}
		if err := t.Cancel(e.At); err != nil {
			return err
		}
	}
	return nil
}
