package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"humancomp/internal/task"
)

// buildV2Log appends n submit events through the real writer and returns
// the log bytes plus the byte offset just past each record (offsets[k] is
// the exact-prefix length containing k+1 records; the file header precedes
// offsets[0]).
func buildV2Log(t *testing.T, n int) ([]byte, []int64) {
	t.Helper()
	var buf bytes.Buffer
	wal := NewWAL(&buf)
	offsets := make([]int64, 0, n)
	for i := 1; i <= n; i++ {
		if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, task.ID(i), 1)}); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, int64(buf.Len()))
	}
	return buf.Bytes(), offsets
}

// replayPrefix asserts that log replays exactly `want` events with no
// error and returns the stats.
func replayPrefix(t *testing.T, log []byte, want int) ReplayStats {
	t.Helper()
	s := New()
	st, err := ReplayWAL(bytes.NewReader(log), s)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st.Applied != want {
		t.Fatalf("applied = %d, want %d (stats %+v)", st.Applied, want, st)
	}
	if s.Len() != want {
		t.Fatalf("store holds %d tasks, want %d", s.Len(), want)
	}
	for i := 1; i <= want; i++ {
		if _, err := s.Get(task.ID(i)); err != nil {
			t.Fatalf("acknowledged task %d lost", i)
		}
	}
	return st
}

func TestWALCorruptionTornFinalRecord(t *testing.T) {
	log, offsets := buildV2Log(t, 3)
	// Cut the log at every byte position inside the final record: header
	// bytes, length prefix, checksum, payload — each must recover the
	// exact two-record prefix.
	for cut := offsets[1] + 1; cut < offsets[2]; cut++ {
		st := replayPrefix(t, log[:cut], 2)
		if st.GoodBytes != offsets[1] {
			t.Fatalf("cut %d: GoodBytes = %d, want %d", cut, st.GoodBytes, offsets[1])
		}
		if st.TruncatedBytes != cut-offsets[1] {
			t.Fatalf("cut %d: TruncatedBytes = %d, want %d", cut, st.TruncatedBytes, cut-offsets[1])
		}
	}
}

func TestWALCorruptionFlippedByteMidLog(t *testing.T) {
	log, offsets := buildV2Log(t, 5)
	// Flip one payload byte in record 3 (0-indexed record 2): replay must
	// apply exactly records 1..2 and drop everything from the damaged
	// record on — a checksum mismatch mid-log is indistinguishable from
	// damage to everything after it.
	mutated := append([]byte(nil), log...)
	mutated[offsets[1]+walRecordHeader+4] ^= 0x40
	st := replayPrefix(t, mutated, 2)
	if st.GoodBytes != offsets[1] {
		t.Fatalf("GoodBytes = %d, want %d", st.GoodBytes, offsets[1])
	}
	if st.TruncatedBytes != int64(len(log))-offsets[1] {
		t.Fatalf("TruncatedBytes = %d, want %d", st.TruncatedBytes, int64(len(log))-offsets[1])
	}
}

func TestWALCorruptionZeroFilledTail(t *testing.T) {
	log, offsets := buildV2Log(t, 2)
	// A zero-filled tail (preallocated blocks, partial page writes) parses
	// as a zero-length record: corrupt, truncated, prefix kept.
	padded := append(append([]byte(nil), log...), make([]byte, 64)...)
	st := replayPrefix(t, padded, 2)
	if st.GoodBytes != offsets[1] || st.TruncatedBytes != 64 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWALCorruptionEmptyFile(t *testing.T) {
	st := replayPrefix(t, nil, 0)
	if st.GoodBytes != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWALReplayMixedV1ThenV2(t *testing.T) {
	// A legacy v1 log (bare JSON lines) later upgraded in place: v2
	// records appended after the v1 section, starting with the v2 header.
	var buf bytes.Buffer
	for i := 1; i <= 2; i++ {
		line, err := json.Marshal(Event{Kind: EventSubmit, At: t0, Task: walTask(t, task.ID(i), 1)})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	wal := NewWAL(&buf)
	for i := 3; i <= 4; i++ {
		if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, task.ID(i), 1)}); err != nil {
			t.Fatal(err)
		}
	}
	st := replayPrefix(t, buf.Bytes(), 4)
	if st.LegacyEvents != 2 {
		t.Fatalf("LegacyEvents = %d, want 2", st.LegacyEvents)
	}

	// The same mixed log with a torn v2 tail still recovers its prefix.
	torn := buf.Bytes()[:buf.Len()-3]
	st = replayPrefix(t, torn, 3)
	if st.TruncatedBytes == 0 {
		t.Fatal("torn v2 tail not reported")
	}
}

func TestWALReplayLegacyV1TornAndCorrupt(t *testing.T) {
	// Pure v1 logs keep their recovery semantics: a torn final line and a
	// corrupt mid-log line both recover the exact prefix.
	var buf bytes.Buffer
	for i := 1; i <= 3; i++ {
		line, _ := json.Marshal(Event{Kind: EventSubmit, At: t0, Task: walTask(t, task.ID(i), 1)})
		buf.Write(line)
		buf.WriteByte('\n')
	}
	whole := buf.Bytes()
	st := replayPrefix(t, whole[:len(whole)-5], 2) // torn final line
	if st.TruncatedBytes == 0 {
		t.Fatal("torn v1 tail not reported")
	}

	mutated := append([]byte(nil), whole...)
	mutated[bytes.IndexByte(mutated, '\n')-3] = 0xFF // corrupt line 1
	replayPrefix(t, mutated, 0)
}

func TestRecoverWALTruncatesFile(t *testing.T) {
	log, offsets := buildV2Log(t, 3)
	path := filepath.Join(t.TempDir(), "wal")
	// Damage the file with a torn final record plus garbage.
	torn := append(append([]byte(nil), log[:offsets[2]-4]...), "garbage"...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	s := New()
	st, err := RecoverWAL(f, s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 2 || st.GoodBytes != offsets[1] {
		t.Fatalf("stats = %+v", st)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != offsets[1] {
		t.Fatalf("file not truncated to good prefix: size = %d, want %d", fi.Size(), offsets[1])
	}

	// The recovered file replays cleanly end to end.
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if st, err := ReplayWAL(f, New()); err != nil || st.Applied != 2 || st.TruncatedBytes != 0 {
		t.Fatalf("post-recovery replay: %+v, %v", st, err)
	}
}

// syncCounter is a Writer+Syncer that counts fsyncs.
type syncCounter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	syncs atomic.Int64
}

func (s *syncCounter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *syncCounter) Sync() error {
	s.syncs.Add(1)
	return nil
}

func TestWALSyncAlwaysGroupCommit(t *testing.T) {
	sc := &syncCounter{}
	wal := NewWALWith(sc, WALOptions{Policy: SyncAlways})
	defer wal.Close()

	// Sequential appends each pay their own fsync.
	for i := 1; i <= 3; i++ {
		if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, task.ID(i), 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sc.syncs.Load(); got != 3 {
		t.Fatalf("sequential syncs = %d, want 3", got)
	}

	// Concurrent appends share fsyncs: never more than one per append,
	// and every append is durable when it returns.
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := task.ID(100 + w*each + i)
				tk, err := task.New(id, task.Label, task.Payload{ImageID: int(id)}, 1, t0)
				if err != nil {
					t.Error(err)
					return
				}
				if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: tk}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := sc.syncs.Load(); got > 3+writers*each {
		t.Fatalf("syncs = %d, exceeds one per append", got)
	}
	// Everything acknowledged must replay.
	sc.mu.Lock()
	log := append([]byte(nil), sc.buf.Bytes()...)
	sc.mu.Unlock()
	st, err := ReplayWAL(bytes.NewReader(log), New())
	if err != nil || st.Applied != 3+writers*each {
		t.Fatalf("replay after group commit: %+v, %v", st, err)
	}
}

func TestWALSyncIntervalBackground(t *testing.T) {
	sc := &syncCounter{}
	wal := NewWALWith(sc, WALOptions{Policy: SyncInterval, Interval: time.Millisecond})
	if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sc.syncs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sc.syncs.Load() == 0 {
		t.Fatal("background sync never fired")
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
}

// failAfterWriter accepts n writes, then fails permanently.
type failAfterWriter struct {
	n    int
	seen int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.seen++
	if w.seen > w.n {
		return 0, errors.New("disk gone")
	}
	return len(p), nil
}

func TestWALHealthTracking(t *testing.T) {
	// Each append flushes once; the first flush carries header + record 1.
	wal := NewWAL(&failAfterWriter{n: 1})
	if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if !wal.Healthy() {
		t.Fatal("healthy WAL reported unhealthy")
	}
	if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, 2, 1)}); err == nil {
		t.Fatal("append on dead writer succeeded")
	}
	if wal.Healthy() {
		t.Fatal("failed append left WAL healthy")
	}
	if wal.Err() == nil || wal.Failures() == 0 {
		t.Fatalf("Err = %v, Failures = %d", wal.Err(), wal.Failures())
	}
}
