package store

import (
	"bytes"
	"testing"

	"humancomp/internal/task"
)

// FuzzWALDecode throws arbitrary bytes at the replay path. The decoder
// must never panic, never return both an error and damage-tolerant stats
// that disagree (GoodBytes past the input length), and — when the input is
// a valid log prefix — apply exactly the events the prefix contains.
func FuzzWALDecode(f *testing.F) {
	// Seed with a real v2 log, a legacy v1 log, a mixed log and assorted
	// near-misses so the fuzzer starts at the interesting boundaries.
	var v2 bytes.Buffer
	wal := NewWAL(&v2)
	for i := 1; i <= 3; i++ {
		tk, err := task.New(task.ID(i), task.Label, task.Payload{ImageID: i}, 1, t0)
		if err != nil {
			f.Fatal(err)
		}
		if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: tk}); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(v2.Bytes())
	f.Add(v2.Bytes()[:v2.Len()-5])
	f.Add([]byte(`{"kind":"submit","at":"2026-07-06T12:00:00Z","task":{"id":1,"kind":"label","payload":{"image_id":1},"redundancy":1,"status":"open"}}` + "\n"))
	f.Add([]byte("HCWL"))
	f.Add([]byte{'H', 'C', 'W', 'L', 2, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		s := New()
		st, err := ReplayWAL(bytes.NewReader(data), s)
		if st.Applied < 0 || st.GoodBytes < 0 || st.TruncatedBytes < 0 {
			t.Fatalf("negative stats: %+v", st)
		}
		if st.GoodBytes+st.TruncatedBytes > int64(len(data)) {
			t.Fatalf("stats cover %d bytes of a %d-byte input: %+v",
				st.GoodBytes+st.TruncatedBytes, len(data), st)
		}
		if s.Len() > st.Applied {
			t.Fatalf("store holds %d tasks but only %d events applied", s.Len(), st.Applied)
		}
		_ = err // damage is tolerated; only apply-inconsistency errors here
	})
}
