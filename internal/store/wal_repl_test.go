package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"humancomp/internal/task"
)

// TestWALAppendAfterClose pins the shutdown contract: a closed WAL refuses
// appends with a stable error instead of racing the closed syncer or
// writing records nothing will ever flush.
func TestWALAppendAfterClose(t *testing.T) {
	var buf bytes.Buffer
	wal := NewWAL(&buf)
	if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, 2, 1)})
	if !errors.Is(err, ErrWALClosed) {
		t.Fatalf("append after close = %v, want ErrWALClosed", err)
	}
	if err := wal.AppendBatch([]Event{{Kind: EventCancel, At: t0, TaskID: 1}}); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("batch append after close = %v, want ErrWALClosed", err)
	}
	if got := wal.LastSeq(); got != 1 {
		t.Fatalf("LastSeq after close = %d, want 1", got)
	}
}

// TestRecoverWALReadOnlyFile covers recovery against a file that cannot be
// truncated. A clean log recovers fine (nothing to cut); a torn log must
// surface the truncation failure as an error — silently continuing would
// leave a tail that the next boot replays differently.
func TestRecoverWALReadOnlyFile(t *testing.T) {
	dir := t.TempDir()

	build := func(torn bool) string {
		var buf bytes.Buffer
		wal := NewWAL(&buf)
		if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, 1, 1)}); err != nil {
			t.Fatal(err)
		}
		if err := wal.Append(Event{Kind: EventAnswer, At: t0.Add(time.Minute), TaskID: 1,
			Answer: &answer1}); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		if torn {
			data = data[:len(data)-5]
		}
		path := filepath.Join(dir, map[bool]string{false: "clean.wal", true: "torn.wal"}[torn])
		if err := os.WriteFile(path, data, 0o444); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Clean log: read-only recovery succeeds, both events applied.
	f, err := os.Open(build(false))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := New()
	st, err := RecoverWAL(f, s)
	if err != nil || st.Applied != 2 {
		t.Fatalf("clean read-only recovery: %+v, %v", st, err)
	}

	// Torn log: the good prefix applies, but the impossible truncation is
	// reported, not swallowed.
	f2, err := os.Open(build(true))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	s2 := New()
	st2, err := RecoverWAL(f2, s2)
	if err == nil {
		t.Fatal("torn tail on read-only file recovered without error")
	}
	if st2.Applied != 1 {
		t.Fatalf("applied = %d, want the 1-record good prefix", st2.Applied)
	}
	if _, gerr := s2.Get(1); gerr != nil {
		t.Fatal("good prefix not applied before the truncation failure")
	}
}

// answer1 is a valid answer body shared by recovery tests.
var answer1 = task.Answer{WorkerID: "alice", Words: []int{3}}

// TestRecordScannerResumesAfterMidRecordCut models a replication stream
// dropped mid-record: the scanner applies every complete record, reports
// ErrTornRecord (not a hard failure), and a new scan from the full log
// resumes at the next sequence with nothing lost or double-applied.
func TestRecordScannerResumesAfterMidRecordCut(t *testing.T) {
	var buf bytes.Buffer
	wal := NewWAL(&buf)
	const total = 8
	for i := 1; i <= total; i++ {
		if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, task.ID(1000+i), 1)}); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()

	// Cut inside the 6th record: keep 5 full records plus a fragment.
	sc := NewRecordScanner(bytes.NewReader(full), 0)
	var offsets []int // cumulative frame sizes, after the file header
	off := len(walMagic)
	for sc.Scan() {
		off += len(sc.Frame())
		offsets = append(offsets, off)
	}
	if sc.Err() != nil || len(offsets) != total {
		t.Fatalf("baseline scan: %d records, err %v", len(offsets), sc.Err())
	}
	cut := offsets[4] + (offsets[5]-offsets[4])/2

	applied := map[int64]bool{}
	sc = NewRecordScanner(bytes.NewReader(full[:cut]), 0)
	for sc.Scan() {
		applied[sc.Seq()] = true
	}
	if err := sc.Err(); err != ErrTornRecord {
		t.Fatalf("cut stream err = %v, want ErrTornRecord", err)
	}
	if len(applied) != 5 || !applied[5] || applied[6] {
		t.Fatalf("cut stream applied %v, want exactly seqs 1-5", applied)
	}

	// Resume: rescan the full log, skipping what is already applied.
	sc = NewRecordScanner(bytes.NewReader(full), 0)
	for sc.Scan() {
		if applied[sc.Seq()] {
			continue // already applied before the cut
		}
		applied[sc.Seq()] = true
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	for i := int64(1); i <= total; i++ {
		if !applied[i] {
			t.Fatalf("seq %d missing after resume", i)
		}
	}
}

// TestWALOnRecordTap verifies the replication tap: one call per acked
// record, in order, 1-based, with frames that round-trip through the
// record scanner.
func TestWALOnRecordTap(t *testing.T) {
	var buf bytes.Buffer
	var seqs []int64
	var frames [][]byte
	wal := NewWALWith(&buf, WALOptions{OnRecord: func(seq int64, frame []byte) {
		seqs = append(seqs, seq)
		frames = append(frames, frame)
	}})
	if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := wal.AppendBatch([]Event{
		{Kind: EventSubmit, At: t0, Task: walTask(t, 2, 1)},
		{Kind: EventCancel, At: t0, TaskID: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if want := []int64{1, 2, 3}; len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 3 {
		t.Fatalf("tap seqs = %v, want %v", seqs, want)
	}
	if wal.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d", wal.LastSeq())
	}
	// Concatenated tap frames must be a valid headerless record stream —
	// exactly what the replication source ships.
	var stream bytes.Buffer
	for _, f := range frames {
		stream.Write(f)
	}
	sc := NewRecordScanner(&stream, 0)
	n := 0
	for sc.Scan() {
		n++
		if sc.Seq() != int64(n) {
			t.Fatalf("scanned seq %d at position %d", sc.Seq(), n)
		}
	}
	if sc.Err() != nil || n != 3 {
		t.Fatalf("frame stream scan: %d records, err %v", n, sc.Err())
	}
}
