package store

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"humancomp/internal/task"
)

func walTask(t *testing.T, id task.ID, redundancy int) *task.Task {
	t.Helper()
	tk, err := task.New(id, task.Label, task.Payload{ImageID: int(id)}, redundancy, t0)
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	wal := NewWAL(&buf)

	tk := walTask(t, 1, 2)
	if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: tk}); err != nil {
		t.Fatal(err)
	}
	a1 := task.Answer{WorkerID: "alice", Words: []int{3}}
	if err := wal.Append(Event{Kind: EventAnswer, At: t0.Add(time.Minute), TaskID: 1, Answer: &a1}); err != nil {
		t.Fatal(err)
	}
	tk2 := walTask(t, 2, 1)
	if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: tk2}); err != nil {
		t.Fatal(err)
	}
	if err := wal.Append(Event{Kind: EventCancel, At: t0.Add(2 * time.Minute), TaskID: 2}); err != nil {
		t.Fatal(err)
	}
	if wal.Len() != 4 {
		t.Fatalf("Len = %d", wal.Len())
	}

	s := New()
	st, err := ReplayWAL(&buf, s)
	if err != nil || st.Applied != 4 {
		t.Fatalf("replay: %+v, %v", st, err)
	}
	if st.TruncatedBytes != 0 {
		t.Fatalf("clean log reported truncation: %+v", st)
	}
	got, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 1 || got.Answers[0].WorkerID != "alice" || got.Status != task.Open {
		t.Fatalf("replayed task 1 = %+v", got)
	}
	got2, err := s.Get(2)
	if err != nil || got2.Status != task.Canceled {
		t.Fatalf("replayed task 2 = %+v, %v", got2, err)
	}
	// The allocator continues past replayed IDs.
	if id := s.NextID(); id <= 2 {
		t.Fatalf("NextID after replay = %d", id)
	}
}

func TestWALReplayToleratesTornTail(t *testing.T) {
	var buf bytes.Buffer
	wal := NewWAL(&buf)
	if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a fragment of a record at the end.
	buf.WriteString(`{"kind":"answer","task_id":1,"ans`)

	s := New()
	st, err := ReplayWAL(&buf, s)
	if err != nil {
		t.Fatalf("torn tail should end replay cleanly: %v", err)
	}
	if st.Applied != 1 {
		t.Fatalf("applied = %d", st.Applied)
	}
	if st.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported in TruncatedBytes")
	}
	if _, err := s.Get(1); err != nil {
		t.Fatal("acknowledged event lost")
	}
}

func TestWALReplayRejectsInconsistentEvents(t *testing.T) {
	// Answer for a task that was never submitted.
	line := `{"kind":"answer","at":"2026-07-06T12:00:00Z","task_id":7,"answer":{"worker_id":"w","words":[1]}}` + "\n"
	s := New()
	if _, err := ReplayWAL(strings.NewReader(line), s); err == nil {
		t.Fatal("orphan answer accepted")
	}
	// Duplicate submit.
	var buf bytes.Buffer
	wal := NewWAL(&buf)
	_ = wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, 1, 1)})
	_ = wal.Append(Event{Kind: EventSubmit, At: t0, Task: walTask(t, 1, 1)})
	s2 := New()
	if _, err := ReplayWAL(&buf, s2); err == nil {
		t.Fatal("duplicate submit accepted")
	}
}

func TestWALAppendValidation(t *testing.T) {
	wal := NewWAL(&bytes.Buffer{})
	cases := map[string]Event{
		"submit without task": {Kind: EventSubmit},
		"answer without id":   {Kind: EventAnswer, Answer: &task.Answer{Words: []int{1}}},
		"answer without body": {Kind: EventAnswer, TaskID: 1},
		"cancel without id":   {Kind: EventCancel},
		"unknown kind":        {Kind: "bogus"},
	}
	for name, e := range cases {
		if err := wal.Append(e); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if wal.Len() != 0 {
		t.Fatalf("invalid events counted: %d", wal.Len())
	}
}

func TestWALSnapshotPlusTailRecovery(t *testing.T) {
	// The production recovery path: restore the snapshot, then replay the
	// WAL tail written after it.
	s := New()
	tk := walTask(t, 1, 2)
	s.Put(tk)
	var snap bytes.Buffer
	if err := s.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	var tail bytes.Buffer
	wal := NewWAL(&tail)
	a := task.Answer{WorkerID: "late", Words: []int{9}}
	if err := wal.Append(Event{Kind: EventAnswer, At: t0.Add(time.Hour), TaskID: 1, Answer: &a}); err != nil {
		t.Fatal(err)
	}

	recovered := New()
	if err := recovered.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayWAL(&tail, recovered); err != nil {
		t.Fatal(err)
	}
	got, err := recovered.Get(1)
	if err != nil || len(got.Answers) != 1 || got.Answers[0].WorkerID != "late" {
		t.Fatalf("recovered task = %+v, %v", got, err)
	}
}

// TestWALRoundTripProperty: any valid event sequence replays to the same
// store state regardless of chunking of the log bytes.
func TestWALRoundTripProperty(t *testing.T) {
	src := rngNew(13)
	for trial := 0; trial < 50; trial++ {
		var buf bytes.Buffer
		wal := NewWAL(&buf)
		reference := New()
		nextID := task.ID(0)
		open := []task.ID{}
		for op := 0; op < 30; op++ {
			switch src(3) {
			case 0:
				nextID++
				tk, _ := task.New(nextID, task.Label, task.Payload{ImageID: int(nextID)}, 2, t0)
				if err := wal.Append(Event{Kind: EventSubmit, At: t0, Task: cloneTask(tk)}); err != nil {
					t.Fatal(err)
				}
				reference.Put(tk)
				open = append(open, nextID)
			case 1:
				if len(open) == 0 {
					continue
				}
				id := open[src(len(open))]
				ref, _ := reference.Get(id)
				if ref.Status != task.Open {
					continue
				}
				a := task.Answer{WorkerID: "w" + string(rune('a'+src(20))), Words: []int{src(50)}}
				if err := ref.Record(a, t0); err != nil {
					continue
				}
				recorded := ref.Answers[len(ref.Answers)-1]
				if err := wal.Append(Event{Kind: EventAnswer, At: t0, TaskID: id, Answer: &recorded}); err != nil {
					t.Fatal(err)
				}
			case 2:
				if len(open) == 0 {
					continue
				}
				id := open[src(len(open))]
				ref, _ := reference.Get(id)
				if ref.Cancel(t0) != nil {
					continue
				}
				if err := wal.Append(Event{Kind: EventCancel, At: t0, TaskID: id}); err != nil {
					t.Fatal(err)
				}
			}
		}
		replayed := New()
		if _, err := ReplayWAL(bytes.NewReader(buf.Bytes()), replayed); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, want := range reference.All() {
			got, err := replayed.Get(want.ID)
			if err != nil {
				t.Fatalf("trial %d: task %d missing", trial, want.ID)
			}
			if got.Status != want.Status || len(got.Answers) != len(want.Answers) {
				t.Fatalf("trial %d: task %d state diverged: %+v vs %+v", trial, want.ID, got, want)
			}
		}
	}
}

// rngNew returns a tiny deterministic bounded-int generator for the
// property test (avoids importing internal/rng into store's tests).
func rngNew(seed uint64) func(n int) int {
	s := seed
	return func(n int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(n))
	}
}

// cloneTask deep-copies a task so the reference store's later mutations
// don't alias the event payload.
func cloneTask(t *task.Task) *task.Task {
	cp := *t
	cp.Answers = append([]task.Answer(nil), t.Answers...)
	if t.Payload.Taboo != nil {
		cp.Payload.Taboo = append([]int(nil), t.Payload.Taboo...)
	}
	return &cp
}

func TestWALAppendBatchReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	wal := NewWAL(&buf)

	a := task.Answer{WorkerID: "alice", Words: []int{3}}
	events := []Event{
		{Kind: EventSubmit, At: t0, Task: walTask(t, 1, 2)},
		{Kind: EventSubmit, At: t0, Task: walTask(t, 2, 1)},
		{Kind: EventAnswer, At: t0.Add(time.Minute), TaskID: 1, Answer: &a},
		{Kind: EventCancel, At: t0.Add(2 * time.Minute), TaskID: 2},
	}
	if err := wal.AppendBatch(events); err != nil {
		t.Fatal(err)
	}
	if wal.Len() != 4 {
		t.Fatalf("Len = %d, want 4", wal.Len())
	}

	s := New()
	st, err := ReplayWAL(&buf, s)
	if err != nil || st.Applied != 4 || st.TruncatedBytes != 0 {
		t.Fatalf("replay: %+v, %v", st, err)
	}
	got, err := s.Get(1)
	if err != nil || len(got.Answers) != 1 || got.Answers[0].WorkerID != "alice" {
		t.Fatalf("replayed task 1 = %+v, %v", got, err)
	}
	if got2, err := s.Get(2); err != nil || got2.Status != task.Canceled {
		t.Fatalf("replayed task 2 = %+v, %v", got2, err)
	}
}

func TestWALAppendBatchRejectsInvalidEventUpFront(t *testing.T) {
	var buf bytes.Buffer
	wal := NewWAL(&buf)
	events := []Event{
		{Kind: EventSubmit, At: t0, Task: walTask(t, 1, 1)},
		{Kind: EventSubmit, At: t0}, // nil Task: invalid
	}
	if err := wal.AppendBatch(events); err == nil {
		t.Fatal("AppendBatch accepted an invalid event")
	}
	// Nothing was acknowledged, so nothing may replay.
	if wal.Len() != 0 {
		t.Fatalf("Len = %d after rejected batch, want 0", wal.Len())
	}
	if st, err := ReplayWAL(&buf, New()); err != nil || st.Applied != 0 {
		t.Fatalf("replay after rejected batch: %+v, %v", st, err)
	}
}

func TestWALAppendBatchSingleFsync(t *testing.T) {
	sc := &syncCounter{}
	wal := NewWALWith(sc, WALOptions{Policy: SyncAlways})
	defer wal.Close()

	const n = 64
	events := make([]Event, n)
	for i := range events {
		events[i] = Event{Kind: EventSubmit, At: t0, Task: walTask(t, task.ID(i+1), 1)}
	}
	if err := wal.AppendBatch(events); err != nil {
		t.Fatal(err)
	}
	if got := sc.syncs.Load(); got != 1 {
		t.Fatalf("batch of %d cost %d fsyncs, want 1", n, got)
	}
	// Equivalent single appends pay one fsync each.
	for i := 0; i < n; i++ {
		if err := wal.Append(Event{Kind: EventCancel, At: t0, TaskID: task.ID(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sc.syncs.Load(); got != 1+n {
		t.Fatalf("syncs = %d, want %d", got, 1+n)
	}
}
