// Package task defines the unit of human computation: a Task describing
// work a human can do in seconds (label an image, locate an object,
// transcribe a word, compare two items), the Answer a worker returns, and
// the lifecycle both move through. The queue, dispatch service and games
// all speak in these types.
package task

import (
	"errors"
	"fmt"
	"time"

	"humancomp/internal/vocab"
)

// Kind identifies what kind of human computation a task asks for.
type Kind int

// The task kinds used by the GWAPs and the reCAPTCHA pipeline.
const (
	// Label asks for free-text tags describing an image (ESP Game).
	Label Kind = iota
	// Locate asks where in an image a named object is (Peekaboom).
	Locate
	// Describe asks for facts about a concept (Verbosity).
	Describe
	// Transcribe asks for the text in a distorted word image (reCAPTCHA).
	Transcribe
	// Compare asks which of two items the worker prefers (Matchin).
	Compare
	// Judge asks whether two descriptions refer to the same item (TagATune).
	Judge
	numKinds
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Label:
		return "label"
	case Locate:
		return "locate"
	case Describe:
		return "describe"
	case Transcribe:
		return "transcribe"
	case Compare:
		return "compare"
	case Judge:
		return "judge"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind returns the Kind named by s, or an error.
func ParseKind(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("task: unknown kind %q", s)
}

// ID uniquely identifies a task within one system instance.
type ID int64

// Status is a task's position in its lifecycle.
type Status int

// Task lifecycle states. Tasks move Open → Done or Open → Canceled;
// leasing is tracked by the queue, not by the task itself.
const (
	Open Status = iota
	Done
	Canceled
)

// String returns the lowercase name of the status.
func (s Status) String() string {
	switch s {
	case Open:
		return "open"
	case Done:
		return "done"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Payload carries the kind-specific inputs of a task. Exactly the fields
// relevant to the Kind are meaningful; the rest stay at their zero values.
// Keeping one flat struct (rather than an interface) makes the JSON wire
// format of the dispatch service trivial and self-describing.
type Payload struct {
	ImageID int    `json:"image_id,omitempty"` // Label, Locate, Compare (first image)
	ImageB  int    `json:"image_b,omitempty"`  // Compare (second image)
	Word    int    `json:"word,omitempty"`     // Locate (object to find), Describe (concept)
	WordImg string `json:"word_img,omitempty"` // Transcribe (degraded rendering)
	Taboo   []int  `json:"taboo,omitempty"`    // Label (off-limits words)
	ClipA   int    `json:"clip_a,omitempty"`   // Judge
	ClipB   int    `json:"clip_b,omitempty"`   // Judge
}

// Task is one unit of human computation.
type Task struct {
	ID         ID      `json:"id"`
	Kind       Kind    `json:"kind"`
	Payload    Payload `json:"payload"`
	Redundancy int     `json:"redundancy"` // independent answers wanted (>= 1)
	Priority   int     `json:"priority"`   // higher is scheduled first
	Status     Status  `json:"status"`

	CreatedAt time.Time `json:"created_at"`
	DoneAt    time.Time `json:"done_at,omitempty"`

	Answers []Answer `json:"answers,omitempty"`
}

// Answer is one worker's response to a task. As with Payload, only the
// fields matching the task's Kind are meaningful.
type Answer struct {
	TaskID   ID        `json:"task_id"`
	WorkerID string    `json:"worker_id"`
	At       time.Time `json:"at"`

	Words  []int      `json:"words,omitempty"`  // Label, Describe (objects of facts)
	Box    vocab.Rect `json:"box,omitempty"`    // Locate
	Text   string     `json:"text,omitempty"`   // Transcribe
	Choice int        `json:"choice,omitempty"` // Compare (0 or 1), Judge (0 same / 1 different)
}

// Validation errors returned by Record and the dispatch service.
var (
	ErrWrongStatus   = errors.New("task: not open")
	ErrEmptyAnswer   = errors.New("task: answer carries no content for its kind")
	ErrBadChoice     = errors.New("task: choice out of range for its kind")
	ErrWorkerRepeat  = errors.New("task: worker already answered this task")
	ErrBadRedundancy = errors.New("task: redundancy must be >= 1")
	ErrUnknownKind   = errors.New("task: unknown kind")
)

// New returns an Open task. It returns ErrBadRedundancy if redundancy < 1
// and ErrUnknownKind for an out-of-range kind.
func New(id ID, kind Kind, p Payload, redundancy int, now time.Time) (*Task, error) {
	if kind < 0 || kind >= numKinds {
		return nil, ErrUnknownKind
	}
	if redundancy < 1 {
		return nil, ErrBadRedundancy
	}
	return &Task{
		ID:         id,
		Kind:       kind,
		Payload:    p,
		Redundancy: redundancy,
		Status:     Open,
		CreatedAt:  now,
	}, nil
}

// ValidateAnswer checks that a carries content appropriate for kind. A
// Choice outside the kind's label space is ErrBadChoice (not merely empty):
// it is a malformed vote that must never reach aggregation. Exposed so the
// ingress path can reject a poisoned answer — including a gold task's
// expected answer — before it is journaled or recorded.
func ValidateAnswer(kind Kind, a Answer) error {
	switch kind {
	case Label, Describe:
		if len(a.Words) == 0 {
			return ErrEmptyAnswer
		}
	case Locate:
		if a.Box.Area() == 0 {
			return ErrEmptyAnswer
		}
	case Transcribe:
		if a.Text == "" {
			return ErrEmptyAnswer
		}
	case Compare, Judge:
		if a.Choice != 0 && a.Choice != 1 {
			return ErrBadChoice
		}
	}
	return nil
}

// Record validates and appends a worker's answer. When the task has
// collected Redundancy answers it transitions to Done and records DoneAt.
// Each worker may answer a given task at most once — independent judgments
// are the whole point of redundancy.
func (t *Task) Record(a Answer, now time.Time) error {
	if t.Status != Open {
		return ErrWrongStatus
	}
	if err := ValidateAnswer(t.Kind, a); err != nil {
		return err
	}
	for _, prev := range t.Answers {
		if prev.WorkerID == a.WorkerID {
			return ErrWorkerRepeat
		}
	}
	a.TaskID = t.ID
	a.At = now
	t.Answers = append(t.Answers, a)
	if len(t.Answers) >= t.Redundancy {
		t.Status = Done
		t.DoneAt = now
	}
	return nil
}

// View is an immutable deep copy of a Task taken at one instant. The
// dispatch read path (HTTP handlers, snapshots, the journal) serializes
// Views, never live *Task pointers, so readers can never observe — or
// race with — the queue mutating a task. View has the same fields and
// JSON encoding as Task but deliberately none of its methods.
type View Task

// View returns a deep copy of the task: the Answers slice, each answer's
// Words, and the payload's Taboo list are all copied, so the view shares
// no mutable memory with the task. Callers must hold whatever lock guards
// the task's mutations while copying (the queue and store do).
func (t *Task) View() View {
	v := View(*t)
	v.Payload.Taboo = append([]int(nil), t.Payload.Taboo...)
	if t.Answers != nil {
		v.Answers = make([]Answer, len(t.Answers))
		for i, a := range t.Answers {
			a.Words = append([]int(nil), a.Words...)
			v.Answers[i] = a
		}
	}
	return v
}

// Remaining returns how many more answers the viewed task needs.
func (v View) Remaining() int {
	if r := v.Redundancy - len(v.Answers); r > 0 {
		return r
	}
	return 0
}

// Finish transitions an Open task to Done before it has collected its full
// redundancy — the quality plane's early-completion path, taken when the
// posterior confidence over the answers already in hand crosses the
// configured target. Finishing a non-open task returns ErrWrongStatus.
func (t *Task) Finish(now time.Time) error {
	if t.Status != Open {
		return ErrWrongStatus
	}
	t.Status = Done
	t.DoneAt = now
	return nil
}

// Cancel transitions an Open task to Canceled; canceling a finished task
// returns ErrWrongStatus.
func (t *Task) Cancel(now time.Time) error {
	if t.Status != Open {
		return ErrWrongStatus
	}
	t.Status = Canceled
	t.DoneAt = now
	return nil
}

// Remaining returns how many more answers the task needs.
func (t *Task) Remaining() int {
	r := t.Redundancy - len(t.Answers)
	if r < 0 {
		return 0
	}
	return r
}
