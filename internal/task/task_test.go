package task

import (
	"errors"
	"testing"
	"time"

	"humancomp/internal/vocab"
)

var t0 = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

func mustNew(t *testing.T, kind Kind, redundancy int) *Task {
	t.Helper()
	tk, err := New(1, kind, Payload{ImageID: 7}, redundancy, t0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tk
}

func TestKindStringsRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus kind")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, Label, Payload{}, 0, t0); !errors.Is(err, ErrBadRedundancy) {
		t.Errorf("redundancy 0: err = %v", err)
	}
	if _, err := New(1, Kind(99), Payload{}, 1, t0); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("kind 99: err = %v", err)
	}
	if _, err := New(1, numKinds, Payload{}, 1, t0); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("numKinds: err = %v", err)
	}
}

func TestRecordCompletesAtRedundancy(t *testing.T) {
	tk := mustNew(t, Label, 3)
	for i := 0; i < 3; i++ {
		if tk.Status != Open {
			t.Fatalf("task closed after %d answers", i)
		}
		a := Answer{WorkerID: string(rune('a' + i)), Words: []int{i}}
		if err := tk.Record(a, t0.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatalf("Record %d: %v", i, err)
		}
	}
	if tk.Status != Done {
		t.Fatalf("status = %v after redundancy met", tk.Status)
	}
	if tk.DoneAt != t0.Add(2*time.Second) {
		t.Errorf("DoneAt = %v", tk.DoneAt)
	}
	if tk.Remaining() != 0 {
		t.Errorf("Remaining = %d", tk.Remaining())
	}
	// Further answers are rejected.
	err := tk.Record(Answer{WorkerID: "z", Words: []int{9}}, t0)
	if !errors.Is(err, ErrWrongStatus) {
		t.Errorf("Record after Done: err = %v", err)
	}
}

func TestRecordRejectsRepeatWorker(t *testing.T) {
	tk := mustNew(t, Label, 3)
	if err := tk.Record(Answer{WorkerID: "w", Words: []int{1}}, t0); err != nil {
		t.Fatal(err)
	}
	err := tk.Record(Answer{WorkerID: "w", Words: []int{2}}, t0)
	if !errors.Is(err, ErrWorkerRepeat) {
		t.Errorf("repeat worker: err = %v", err)
	}
	if len(tk.Answers) != 1 {
		t.Errorf("answers = %d after rejected repeat", len(tk.Answers))
	}
}

func TestRecordContentValidation(t *testing.T) {
	cases := []struct {
		kind    Kind
		bad     Answer
		wantErr error
		good    Answer
	}{
		{Label, Answer{}, ErrEmptyAnswer, Answer{Words: []int{3}}},
		{Describe, Answer{}, ErrEmptyAnswer, Answer{Words: []int{3}}},
		{Locate, Answer{}, ErrEmptyAnswer, Answer{Box: vocab.Rect{W: 5, H: 5}}},
		{Transcribe, Answer{}, ErrEmptyAnswer, Answer{Text: "hello"}},
		{Compare, Answer{Choice: 7}, ErrBadChoice, Answer{Choice: 1}},
		{Judge, Answer{Choice: -1}, ErrBadChoice, Answer{Choice: 0}},
	}
	for _, c := range cases {
		tk := mustNew(t, c.kind, 2)
		c.bad.WorkerID = "a"
		if err := tk.Record(c.bad, t0); !errors.Is(err, c.wantErr) {
			t.Errorf("%v bad answer: err = %v", c.kind, err)
		}
		c.good.WorkerID = "a"
		if err := tk.Record(c.good, t0); err != nil {
			t.Errorf("%v good answer: err = %v", c.kind, err)
		}
	}
}

func TestRecordStampsTaskAndTime(t *testing.T) {
	tk := mustNew(t, Label, 2)
	at := t0.Add(time.Minute)
	if err := tk.Record(Answer{WorkerID: "w", Words: []int{1}, TaskID: 999}, at); err != nil {
		t.Fatal(err)
	}
	got := tk.Answers[0]
	if got.TaskID != tk.ID {
		t.Errorf("TaskID = %d, want %d (caller value must be overwritten)", got.TaskID, tk.ID)
	}
	if got.At != at {
		t.Errorf("At = %v, want %v", got.At, at)
	}
}

func TestCancel(t *testing.T) {
	tk := mustNew(t, Label, 1)
	if err := tk.Cancel(t0); err != nil {
		t.Fatal(err)
	}
	if tk.Status != Canceled {
		t.Fatalf("status = %v", tk.Status)
	}
	if err := tk.Cancel(t0); !errors.Is(err, ErrWrongStatus) {
		t.Errorf("double cancel: err = %v", err)
	}
	if err := tk.Record(Answer{WorkerID: "w", Words: []int{1}}, t0); !errors.Is(err, ErrWrongStatus) {
		t.Errorf("record after cancel: err = %v", err)
	}
}

func TestFinishEarly(t *testing.T) {
	tk := mustNew(t, Judge, 5)
	if err := tk.Record(Answer{WorkerID: "w", Choice: 1}, t0); err != nil {
		t.Fatal(err)
	}
	if err := tk.Finish(t0); err != nil {
		t.Fatal(err)
	}
	if tk.Status != Done || !tk.DoneAt.Equal(t0) {
		t.Fatalf("status = %v, doneAt = %v", tk.Status, tk.DoneAt)
	}
	if err := tk.Finish(t0); !errors.Is(err, ErrWrongStatus) {
		t.Errorf("double finish: err = %v", err)
	}
	if err := tk.Record(Answer{WorkerID: "x", Choice: 0}, t0); !errors.Is(err, ErrWrongStatus) {
		t.Errorf("record after finish: err = %v", err)
	}
}

func TestRemaining(t *testing.T) {
	tk := mustNew(t, Label, 2)
	if tk.Remaining() != 2 {
		t.Fatalf("Remaining = %d", tk.Remaining())
	}
	_ = tk.Record(Answer{WorkerID: "a", Words: []int{1}}, t0)
	if tk.Remaining() != 1 {
		t.Fatalf("Remaining = %d", tk.Remaining())
	}
}

func TestStatusString(t *testing.T) {
	if Open.String() != "open" || Done.String() != "done" || Canceled.String() != "canceled" {
		t.Error("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status should still stringify")
	}
}

func TestViewIsDeepCopy(t *testing.T) {
	tk := mustNew(t, Label, 2)
	tk.Payload.Taboo = []int{10, 11}
	if err := tk.Record(Answer{WorkerID: "a", Words: []int{1, 2}}, t0); err != nil {
		t.Fatal(err)
	}
	v := tk.View()

	// Mutating the live task does not reach the view.
	if err := tk.Record(Answer{WorkerID: "b", Words: []int{3}}, t0); err != nil {
		t.Fatal(err)
	}
	tk.Payload.Taboo[0] = 99
	tk.Answers[0].Words[0] = 99
	if len(v.Answers) != 1 || v.Answers[0].Words[0] != 1 || v.Payload.Taboo[0] != 10 {
		t.Fatalf("view sees later mutation: %+v", v)
	}

	// Mutating the view does not reach the task.
	v.Answers[0].Words[1] = 77
	v.Payload.Taboo[1] = 77
	if tk.Answers[0].Words[1] != 2 || tk.Payload.Taboo[1] != 11 {
		t.Fatalf("task sees view mutation: %+v", tk)
	}

	if v.Remaining() != 1 {
		t.Fatalf("view Remaining = %d, want 1", v.Remaining())
	}
}
