// Request-scoped span plane, layered under the task-lifecycle ring.
//
// Where the Recorder answers "what happened to task 17", the SpanPlane
// answers "where did request X spend its time": every API request checks
// out a span tree (root span + children for decode, idempotency lookup,
// shard-lock wait, core op, WAL append/fsync wait, quality update,
// response encode), identified by W3C traceparent-style IDs so one
// logical client call — including its retries — shares a single trace ID
// across processes.
//
// The plane follows the same discipline as the trace ring: span trees are
// freelist-recycled and striped, so the steady state allocates nothing;
// retention is tail-based — a bounded ring keeps every tree whose root
// errored or exceeded a latency threshold, plus a deterministic 1-in-N
// sample of the rest — and the retained set is served at
// GET /v1/debug/spans on the admin listener.
//
// Handles are stale-safe: a Handle captures the tree's generation at
// checkout, and every mutation revalidates it under the tree's mutex, so
// a request abandoned by http.TimeoutHandler can never write into a
// recycled tree. All entry points are nil-safe; a disabled plane is a nil
// *SpanPlane and costs one pointer test per call site.
package trace

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one logical operation end to end, across client
// retries and process boundaries. The zero value means "no trace".
type TraceID [16]byte

// SpanID identifies one span within a trace. The zero value means "no
// span" (a root with no remote parent).
type SpanID [8]byte

// IsZero reports whether t is the absent trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether s is the absent span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-digit lowercase hex form, or "" for the zero ID.
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// String returns the 16-digit lowercase hex form, or "" for the zero ID.
func (s SpanID) String() string {
	if s.IsZero() {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// Hex returns the fixed-size lowercase hex encoding without allocating;
// histogram exemplars store trace IDs in this form.
func (t TraceID) Hex() [32]byte {
	var out [32]byte
	hex.Encode(out[:], t[:])
	return out
}

// MarshalJSON renders the ID as a hex string, "" when zero.
func (t TraceID) MarshalJSON() ([]byte, error) {
	if t.IsZero() {
		return []byte(`""`), nil
	}
	b := make([]byte, 34)
	b[0], b[33] = '"', '"'
	hex.Encode(b[1:33], t[:])
	return b, nil
}

// UnmarshalJSON accepts "" or 32 hex digits.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	if len(b) == 2 && b[0] == '"' && b[1] == '"' {
		*t = TraceID{}
		return nil
	}
	if len(b) != 34 || b[0] != '"' || b[33] != '"' {
		return fmt.Errorf("trace: malformed trace id %q", b)
	}
	if !parseHex(t[:], string(b[1:33])) {
		return fmt.Errorf("trace: malformed trace id %q", b)
	}
	return nil
}

// ParseTraceID parses a 32-hex-digit trace ID; ok is false on anything else.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 || !parseHex(t[:], s) {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// ID generation: a process-global splitmix64 stream seeded from
// crypto/rand. Two atomic adds per trace ID, one per span ID, and no
// allocation — uniqueness within a deployment is what propagation needs,
// not unpredictability.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := cryptorand.Read(seed[:]); err != nil {
		binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	idState.Store(binary.LittleEndian.Uint64(seed[:]))
}

func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	binary.LittleEndian.PutUint64(t[:8], nextID())
	binary.LittleEndian.PutUint64(t[8:], nextID())
	if t.IsZero() {
		t[0] = 1
	}
	return t
}

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	binary.LittleEndian.PutUint64(s[:], nextID())
	if s.IsZero() {
		s[0] = 1
	}
	return s
}

// FormatTraceParent renders the W3C traceparent header value:
// version 00, 32 hex trace ID, 16 hex parent span ID, flags 01 (sampled).
func FormatTraceParent(t TraceID, s SpanID) string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], t[:])
	b[35] = '-'
	hex.Encode(b[36:52], s[:])
	b[52] = '-'
	b[53], b[54] = '0', '1'
	return string(b[:])
}

// ParseTraceParent extracts the trace and parent span IDs from a
// traceparent header value. Unknown future versions are accepted per the
// W3C spec (the first four fields are fixed); all-zero IDs are rejected.
func ParseTraceParent(h string) (TraceID, SpanID, bool) {
	var t TraceID
	var s SpanID
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, s, false
	}
	var version [1]byte
	if !parseHex(version[:], h[0:2]) || version[0] == 0xff {
		return t, s, false
	}
	if !parseHex(t[:], h[3:35]) || !parseHex(s[:], h[36:52]) {
		return t, s, false
	}
	if t.IsZero() || s.IsZero() {
		return t, s, false
	}
	return t, s, true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// parseHex fills dst from exactly 2*len(dst) hex digits without allocating.
func parseHex(dst []byte, s string) bool {
	if len(s) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, ok1 := hexNibble(s[2*i])
		lo, ok2 := hexNibble(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

// SpanData is one timed operation inside a span tree.
type SpanData struct {
	ID     SpanID
	Parent SpanID // zero on a root with no remote parent
	Op     string
	Start  time.Time
	Dur    time.Duration
	Attr   int64 // op-specific: shard index, attempt number, byte count
	Err    string
}

// maxSpansPerTrace bounds one tree; spans past the cap are counted as
// dropped rather than grown, keeping tree memory fixed.
const maxSpansPerTrace = 32

// active is one checkout-able span tree. It cycles between the stripe
// freelist, an in-flight request, and the retained ring; gen increments
// at every checkout so stale Handles become no-ops instead of writing
// into a recycled tree.
type active struct {
	mu      sync.Mutex
	gen     uint64
	trace   TraceID
	spans   []SpanData // spans[0] is the root; backing array cap maxSpansPerTrace
	dropped int32
	done    bool
}

// SpanRef indexes a span within its tree. The root is always ref 0.
type SpanRef int32

// NoSpan is the invalid SpanRef; every Handle method accepts it and
// no-ops, so failed StartSpan results need no guard.
const NoSpan SpanRef = -1

// Handle is a by-value, generation-checked reference to an in-flight
// span tree. The zero Handle is invalid and every method on it no-ops,
// so call sites never need a nil guard. A Handle is safe to use from the
// goroutines serving one request; mutations are serialized by the tree's
// mutex.
type Handle struct {
	a   *active
	gen uint64
	// parent is the ref that NoSpan parents resolve to: 0 (the root) by
	// default, rebased by Under so a layer handed a Handle attaches its
	// spans beneath the caller's current span without a new parameter.
	parent SpanRef
}

// Valid reports whether the handle refers to a checked-out tree.
func (h Handle) Valid() bool { return h.a != nil }

// Root returns the root span's ref.
func (Handle) Root() SpanRef { return 0 }

// Under returns a handle whose default parent (what a NoSpan parent
// resolves to) is ref, so a callee recording spans through it nests them
// under the caller's span. An invalid ref leaves the default at the root.
func (h Handle) Under(ref SpanRef) Handle {
	if ref > 0 {
		h.parent = ref
	}
	return h
}

// Trace returns the tree's trace ID, zero on an invalid or stale handle.
func (h Handle) Trace() TraceID {
	if h.a == nil {
		return TraceID{}
	}
	h.a.mu.Lock()
	var t TraceID
	if h.a.gen == h.gen {
		t = h.a.trace
	}
	h.a.mu.Unlock()
	return t
}

// StartSpan opens a child span under parent and returns its ref; NoSpan
// selects the handle's default parent (the root unless rebased by Under).
// The tree-size cap makes this fail-soft: past maxSpansPerTrace the span
// is counted as dropped and NoSpan is returned.
func (h Handle) StartSpan(op string, parent SpanRef) SpanRef {
	if h.a == nil {
		return NoSpan
	}
	if parent < 0 {
		parent = h.parent
	}
	a := h.a
	a.mu.Lock()
	ref := a.addLocked(h.gen, op, parent, time.Now(), 0, 0)
	a.mu.Unlock()
	return ref
}

// EndSpan closes ref with the elapsed time since its start.
func (h Handle) EndSpan(ref SpanRef) { h.endSpan(ref, "") }

// FailSpan closes ref and marks it errored.
func (h Handle) FailSpan(ref SpanRef, msg string) { h.endSpan(ref, msg) }

func (h Handle) endSpan(ref SpanRef, errMsg string) {
	if h.a == nil || ref < 0 {
		return
	}
	a := h.a
	a.mu.Lock()
	if a.gen == h.gen && !a.done && int(ref) < len(a.spans) {
		sp := &a.spans[ref]
		if sp.Dur == 0 {
			sp.Dur = time.Since(sp.Start)
		}
		if errMsg != "" {
			sp.Err = errMsg
		}
	}
	a.mu.Unlock()
}

// Observe records an already-measured child span — the shape used when a
// duration was captured with local variables (lock waits, fsync waits)
// rather than a start/end pair. A NoSpan parent selects the handle's
// default parent.
func (h Handle) Observe(op string, parent SpanRef, start time.Time, d time.Duration, attr int64) {
	if h.a == nil {
		return
	}
	if parent < 0 {
		parent = h.parent
	}
	a := h.a
	a.mu.Lock()
	a.addLocked(h.gen, op, parent, start, d, attr)
	a.mu.Unlock()
}

// SetAttr attaches an op-specific integer attribute to ref.
func (h Handle) SetAttr(ref SpanRef, v int64) {
	if h.a == nil || ref < 0 {
		return
	}
	a := h.a
	a.mu.Lock()
	if a.gen == h.gen && !a.done && int(ref) < len(a.spans) {
		a.spans[ref].Attr = v
	}
	a.mu.Unlock()
}

// addLocked appends a span; caller holds a.mu.
func (a *active) addLocked(gen uint64, op string, parent SpanRef, start time.Time, d time.Duration, attr int64) SpanRef {
	if a.gen != gen || a.done {
		return NoSpan
	}
	if len(a.spans) >= cap(a.spans) {
		a.dropped++
		return NoSpan
	}
	var pid SpanID
	if int(parent) >= 0 && int(parent) < len(a.spans) {
		pid = a.spans[parent].ID
	}
	ref := SpanRef(len(a.spans))
	a.spans = append(a.spans, SpanData{ID: NewSpanID(), Parent: pid, Op: op, Start: start, Dur: d, Attr: attr})
	return ref
}

// SpanConfig sizes a SpanPlane.
type SpanConfig struct {
	// Enabled turns the plane on; when false NewSpanPlane returns nil and
	// every call site degrades to a pointer test.
	Enabled bool
	// Capacity is the total retained span trees across all stripes
	// (default 512).
	Capacity int
	// SlowThreshold retains every tree whose root duration reaches it
	// (default 100ms; negative disables slow retention).
	SlowThreshold time.Duration
	// SampleEvery retains a deterministic 1-in-N sample of fast, clean
	// trees (default 1024; negative disables sampling).
	SampleEvery int
}

// spanStripes is the number of independently locked plane stripes; a
// power of two so stripe selection is a mask on the trace ID.
const spanStripes = 16

type spanStripe struct {
	mu   sync.Mutex
	free []*active
	ring []*active // retained trees, fixed capacity, oldest overwritten
	next int

	_ [32]byte // keep adjacent stripe mutexes off one cache line
}

func (st *spanStripe) putFree(a *active, limit int) {
	if len(st.free) < limit {
		st.free = append(st.free, a)
	}
}

// SpanPlane owns the freelists and the tail-sampled retention ring. All
// methods are nil-safe; a nil plane records nothing.
type SpanPlane struct {
	slow      time.Duration // negative: slow retention disabled
	sample    uint64        // 0: sampling disabled
	perRing   int
	started   atomic.Uint64
	retained  atomic.Uint64
	discarded atomic.Uint64
	stripes   [spanStripes]spanStripe
}

// NewSpanPlane builds a plane from cfg, or returns nil when disabled.
func NewSpanPlane(cfg SpanConfig) *SpanPlane {
	if !cfg.Enabled {
		return nil
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 512
	}
	per := (capacity + spanStripes - 1) / spanStripes
	slow := cfg.SlowThreshold
	if slow == 0 {
		slow = 100 * time.Millisecond
	}
	sample := uint64(0)
	switch {
	case cfg.SampleEvery == 0:
		sample = 1024
	case cfg.SampleEvery > 0:
		sample = uint64(cfg.SampleEvery)
	}
	p := &SpanPlane{slow: slow, sample: sample, perRing: per}
	for i := range p.stripes {
		p.stripes[i].ring = make([]*active, 0, per)
	}
	return p
}

func (p *SpanPlane) stripeFor(t TraceID) *spanStripe {
	return &p.stripes[t[15]&(spanStripes-1)]
}

// StartTrace checks out a span tree for one request and opens its root
// span. A zero id generates a fresh one; parent is the remote caller's
// span ID (zero for locally originated roots). Nil-safe: a nil plane
// returns the invalid Handle.
func (p *SpanPlane) StartTrace(id TraceID, parent SpanID, op string) Handle {
	if p == nil {
		return Handle{}
	}
	if id.IsZero() {
		id = NewTraceID()
	}
	p.started.Add(1)
	st := p.stripeFor(id)
	st.mu.Lock()
	var a *active
	if n := len(st.free); n > 0 {
		a = st.free[n-1]
		st.free[n-1] = nil
		st.free = st.free[:n-1]
	}
	st.mu.Unlock()
	if a == nil {
		a = &active{spans: make([]SpanData, 0, maxSpansPerTrace)}
	}
	a.mu.Lock()
	a.gen++
	gen := a.gen
	a.trace = id
	a.done = false
	a.dropped = 0
	a.spans = a.spans[:0]
	a.spans = append(a.spans, SpanData{ID: NewSpanID(), Parent: parent, Op: op, Start: time.Now()})
	a.mu.Unlock()
	return Handle{a: a, gen: gen}
}

// Finish closes the root span and applies the tail-sampling decision:
// the tree is retained when the root errored, reached the slow
// threshold, or hit the deterministic 1-in-N sample; otherwise it is
// recycled to the freelist. errMsg marks the root errored when non-empty.
func (p *SpanPlane) Finish(h Handle, errMsg string) {
	if p == nil || h.a == nil {
		return
	}
	a := h.a
	a.mu.Lock()
	if a.gen != h.gen || a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	root := &a.spans[0]
	if root.Dur == 0 {
		root.Dur = time.Since(root.Start)
	}
	if errMsg != "" && root.Err == "" {
		// First error wins: a handler that already failed the root (the
		// panic-recovery path) keeps its more specific message.
		root.Err = errMsg
	}
	keep := root.Err != "" ||
		(p.slow >= 0 && root.Dur >= p.slow) ||
		p.sampleHit(a.trace)
	tr := a.trace
	a.mu.Unlock()

	st := p.stripeFor(tr)
	st.mu.Lock()
	if keep {
		p.retained.Add(1)
		if len(st.ring) < cap(st.ring) {
			st.ring = append(st.ring, a)
		} else {
			old := st.ring[st.next]
			st.ring[st.next] = a
			st.next++
			if st.next == cap(st.ring) {
				st.next = 0
			}
			st.putFree(old, 2*p.perRing)
		}
	} else {
		p.discarded.Add(1)
		st.putFree(a, 2*p.perRing)
	}
	st.mu.Unlock()
}

// sampleHit is the deterministic 1-in-N decision, keyed on trace ID bits
// so every process agrees about which traces are the sample.
func (p *SpanPlane) sampleHit(t TraceID) bool {
	if p.sample == 0 {
		return false
	}
	return binary.LittleEndian.Uint64(t[8:])%p.sample == 0
}

// Stats reports lifetime counters: trees started, trees retained by the
// sampler, trees recycled without retention.
func (p *SpanPlane) Stats() (started, retained, discarded uint64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.started.Load(), p.retained.Load(), p.discarded.Load()
}

// Retained returns the number of trees currently held in the ring.
func (p *SpanPlane) Retained() int {
	if p == nil {
		return 0
	}
	n := 0
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		n += len(st.ring)
		st.mu.Unlock()
	}
	return n
}

// SpanView is the JSON shape of one span inside a retained tree.
type SpanView struct {
	ID       string `json:"id"`
	Parent   string `json:"parent,omitempty"`
	Op       string `json:"op"`
	OffsetUs int64  `json:"offset_us"` // from root start
	DurUs    int64  `json:"duration_us"`
	Attr     int64  `json:"attr,omitempty"`
	Err      string `json:"error,omitempty"`
}

// TraceView is the JSON shape of one retained span tree.
type TraceView struct {
	TraceID string     `json:"trace_id"`
	RootOp  string     `json:"root_op"`
	Start   time.Time  `json:"start"`
	DurMs   float64    `json:"duration_ms"`
	Err     string     `json:"error,omitempty"`
	Dropped int32      `json:"dropped_spans,omitempty"`
	Spans   []SpanView `json:"spans"`
}

// SpanFilter selects retained trees from a Snapshot.
type SpanFilter struct {
	Trace      TraceID       // non-zero: only this trace
	Op         string        // non-empty: root op must match exactly
	MinDur     time.Duration // root duration at least this
	ErrorsOnly bool
	Limit      int // max trees returned, newest first; 0 means 100
}

// Snapshot copies the retained trees matching f out of the ring, newest
// root first.
func (p *SpanPlane) Snapshot(f SpanFilter) []TraceView {
	if p == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 100
	}
	var out []TraceView
	lo, hi := 0, spanStripes
	if !f.Trace.IsZero() {
		i := int(f.Trace[15] & (spanStripes - 1))
		lo, hi = i, i+1
	}
	for i := lo; i < hi; i++ {
		st := &p.stripes[i]
		st.mu.Lock()
		for _, a := range st.ring {
			if tv, ok := a.view(f); ok {
				out = append(out, tv)
			}
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// view copies the tree into its JSON shape when it matches f.
func (a *active) view(f SpanFilter) (TraceView, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.done || len(a.spans) == 0 {
		return TraceView{}, false
	}
	root := a.spans[0]
	if !f.Trace.IsZero() && a.trace != f.Trace {
		return TraceView{}, false
	}
	if f.Op != "" && root.Op != f.Op {
		return TraceView{}, false
	}
	if root.Dur < f.MinDur {
		return TraceView{}, false
	}
	if f.ErrorsOnly && root.Err == "" {
		return TraceView{}, false
	}
	tv := TraceView{
		TraceID: a.trace.String(),
		RootOp:  root.Op,
		Start:   root.Start,
		DurMs:   float64(root.Dur) / float64(time.Millisecond),
		Err:     root.Err,
		Dropped: a.dropped,
		Spans:   make([]SpanView, len(a.spans)),
	}
	for i, sp := range a.spans {
		tv.Spans[i] = SpanView{
			ID:       sp.ID.String(),
			Parent:   sp.Parent.String(),
			Op:       sp.Op,
			OffsetUs: sp.Start.Sub(root.Start).Microseconds(),
			DurUs:    sp.Dur.Microseconds(),
			Attr:     sp.Attr,
			Err:      sp.Err,
		}
	}
	return tv, true
}

type spanCtxKey struct{}

// NewContext returns ctx carrying h; an invalid handle returns ctx
// unchanged.
func NewContext(ctx context.Context, h Handle) context.Context {
	if !h.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, h)
}

// FromContext extracts the request's span handle, the invalid Handle
// when none is attached.
func FromContext(ctx context.Context) Handle {
	h, _ := ctx.Value(spanCtxKey{}).(Handle)
	return h
}
