package trace

import (
	"encoding/binary"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// spanID fills a trace ID so both the stripe byte (t[15]) and the sampling
// word (t[8:]) are pinned, making retention decisions deterministic.
func mkTrace(sampleWord uint64, stripe byte) TraceID {
	var t TraceID
	t[0] = 1 // never zero
	binary.LittleEndian.PutUint64(t[8:], sampleWord)
	t[15] = stripe
	return t
}

func TestTraceParentRoundTrip(t *testing.T) {
	tr, sp := NewTraceID(), NewSpanID()
	h := FormatTraceParent(tr, sp)
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent shape = %q", h)
	}
	gotT, gotS, ok := ParseTraceParent(h)
	if !ok || gotT != tr || gotS != sp {
		t.Fatalf("round trip = (%v, %v, %v), want (%v, %v, true)", gotT, gotS, ok, tr, sp)
	}
	// Unknown future versions are accepted; the fixed fields still parse.
	if _, _, ok := ParseTraceParent("cc" + h[2:]); !ok {
		t.Error("future version rejected")
	}

	bad := []string{
		"",
		"00-abc",
		h[:54],       // truncated
		"ff" + h[2:], // version ff is invalid per spec
		"0x" + h[2:], // non-hex version
		strings.Replace(h, "-", "_", 3),
		"00-" + strings.Repeat("0", 32) + h[35:], // zero trace ID
		h[:36] + strings.Repeat("0", 16) + "-01", // zero span ID
	}
	for _, s := range bad {
		if _, _, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) accepted", s)
		}
	}
}

func TestTraceIDJSON(t *testing.T) {
	tr := NewTraceID()
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `"`+tr.String()+`"` {
		t.Fatalf("marshal = %s", raw)
	}
	var back TraceID
	if err := json.Unmarshal(raw, &back); err != nil || back != tr {
		t.Fatalf("unmarshal = %v, %v", back, err)
	}
	var zero TraceID
	if raw, _ := json.Marshal(zero); string(raw) != `""` {
		t.Fatalf("zero marshal = %s", raw)
	}
	if err := json.Unmarshal([]byte(`""`), &back); err != nil || !back.IsZero() {
		t.Fatalf("empty unmarshal = %v, %v", back, err)
	}
	if err := json.Unmarshal([]byte(`"xyz"`), &back); err == nil {
		t.Error("malformed trace ID accepted")
	}
}

func TestTailSamplingErrorsRetained(t *testing.T) {
	// Slow retention and sampling both disabled: only errors survive.
	p := NewSpanPlane(SpanConfig{Enabled: true, SlowThreshold: -1, SampleEvery: -1})

	h := p.StartTrace(mkTrace(1, 0), SpanID{}, "op.fail")
	p.Finish(h, "boom")
	h = p.StartTrace(mkTrace(2, 0), SpanID{}, "op.clean")
	p.Finish(h, "")

	started, retained, discarded := p.Stats()
	if started != 2 || retained != 1 || discarded != 1 {
		t.Fatalf("stats = %d/%d/%d, want 2/1/1", started, retained, discarded)
	}
	views := p.Snapshot(SpanFilter{ErrorsOnly: true})
	if len(views) != 1 || views[0].RootOp != "op.fail" || views[0].Err != "boom" {
		t.Fatalf("snapshot = %+v", views)
	}
}

func TestTailSamplingSlowRetained(t *testing.T) {
	p := NewSpanPlane(SpanConfig{Enabled: true, SlowThreshold: time.Microsecond, SampleEvery: -1})
	h := p.StartTrace(mkTrace(1, 0), SpanID{}, "op.slow")
	time.Sleep(2 * time.Millisecond)
	p.Finish(h, "")
	if _, retained, _ := p.Stats(); retained != 1 {
		t.Fatalf("slow tree not retained")
	}
}

func TestTailSamplingDeterministic1InN(t *testing.T) {
	p := NewSpanPlane(SpanConfig{Enabled: true, SlowThreshold: -1, SampleEvery: 4})
	// Sample word divisible by 4: kept. Not divisible: recycled.
	p.Finish(p.StartTrace(mkTrace(8, 0), SpanID{}, "hit"), "")
	p.Finish(p.StartTrace(mkTrace(5, 0), SpanID{}, "miss"), "")
	_, retained, discarded := p.Stats()
	if retained != 1 || discarded != 1 {
		t.Fatalf("retained/discarded = %d/%d, want 1/1", retained, discarded)
	}
	if views := p.Snapshot(SpanFilter{}); len(views) != 1 || views[0].RootOp != "hit" {
		t.Fatalf("snapshot = %+v", views)
	}
}

func TestRetentionRingBounded(t *testing.T) {
	// Capacity spanStripes gives one ring slot per stripe; three errored
	// trees on one stripe must leave exactly one retained tree — the newest.
	p := NewSpanPlane(SpanConfig{Enabled: true, Capacity: spanStripes, SlowThreshold: -1, SampleEvery: -1})
	for i := uint64(1); i <= 3; i++ {
		h := p.StartTrace(mkTrace(i, 7), SpanID{}, "op")
		p.Finish(h, "err")
	}
	if got := p.Retained(); got != 1 {
		t.Fatalf("ring holds %d trees, want 1", got)
	}
	views := p.Snapshot(SpanFilter{})
	if len(views) != 1 || views[0].TraceID != mkTrace(3, 7).String() {
		t.Fatalf("survivor = %+v, want the newest tree", views)
	}
	if _, retained, _ := p.Stats(); retained != 3 {
		t.Errorf("lifetime retained = %d, want 3", retained)
	}
}

func TestFreelistRecyclesTrees(t *testing.T) {
	p := NewSpanPlane(SpanConfig{Enabled: true, SlowThreshold: -1, SampleEvery: -1})
	h1 := p.StartTrace(mkTrace(1, 3), SpanID{}, "first")
	a1 := h1.a
	p.Finish(h1, "") // discarded -> freelist
	h2 := p.StartTrace(mkTrace(2, 3), SpanID{}, "second")
	if h2.a != a1 {
		t.Fatal("discarded tree not recycled from the stripe freelist")
	}
	if h2.gen == h1.gen {
		t.Fatal("recycled tree kept its generation")
	}
}

func TestStaleHandleCannotTouchRecycledTree(t *testing.T) {
	p := NewSpanPlane(SpanConfig{Enabled: true, SlowThreshold: -1, SampleEvery: -1})
	h1 := p.StartTrace(mkTrace(1, 3), SpanID{}, "first")
	p.Finish(h1, "")
	h2 := p.StartTrace(mkTrace(2, 3), SpanID{}, "second")

	// The abandoned handle (think http.TimeoutHandler) keeps writing.
	if ref := h1.StartSpan("late", NoSpan); ref != NoSpan {
		t.Fatalf("stale StartSpan returned live ref %d", ref)
	}
	h1.Observe("late", NoSpan, time.Now(), time.Second, 0)
	h1.FailSpan(h1.Root(), "late error")
	if got := h1.Trace(); !got.IsZero() {
		t.Errorf("stale Trace() = %v, want zero", got)
	}

	p.Finish(h2, "keep")
	views := p.Snapshot(SpanFilter{})
	if len(views) != 1 || len(views[0].Spans) != 1 || views[0].Spans[0].Op != "second" {
		t.Fatalf("stale handle corrupted the recycled tree: %+v", views)
	}
	if views[0].Err != "keep" {
		t.Errorf("root err = %q, want %q", views[0].Err, "keep")
	}
}

func TestUnderRebasesDefaultParent(t *testing.T) {
	p := NewSpanPlane(SpanConfig{Enabled: true, SlowThreshold: -1, SampleEvery: -1})
	h := p.StartTrace(TraceID{}, SpanID{}, "root")
	child := h.StartSpan("core.op", NoSpan)
	// A layer handed the rebased handle attaches its spans under core.op
	// without knowing the ref.
	h.Under(child).Observe("wal.append", NoSpan, time.Now(), time.Millisecond, 0)
	h.EndSpan(child)
	p.Finish(h, "force-keep")

	views := p.Snapshot(SpanFilter{})
	if len(views) != 1 {
		t.Fatalf("want 1 view, got %d", len(views))
	}
	spans := views[0].Spans
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %+v", spans)
	}
	if spans[1].Op != "core.op" || spans[1].Parent != spans[0].ID {
		t.Errorf("core.op parent = %q, want root %q", spans[1].Parent, spans[0].ID)
	}
	if spans[2].Op != "wal.append" || spans[2].Parent != spans[1].ID {
		t.Errorf("wal.append parent = %q, want core.op %q", spans[2].Parent, spans[1].ID)
	}
}

func TestSpanCapCountsDropped(t *testing.T) {
	p := NewSpanPlane(SpanConfig{Enabled: true, SlowThreshold: -1, SampleEvery: -1})
	h := p.StartTrace(TraceID{}, SpanID{}, "root")
	for i := 0; i < maxSpansPerTrace+5; i++ {
		h.Observe("child", NoSpan, time.Now(), 0, 0)
	}
	p.Finish(h, "keep")
	views := p.Snapshot(SpanFilter{})
	if len(views) != 1 {
		t.Fatal("tree not retained")
	}
	if len(views[0].Spans) != maxSpansPerTrace {
		t.Errorf("spans = %d, want cap %d", len(views[0].Spans), maxSpansPerTrace)
	}
	if views[0].Dropped != 6 { // 5 over the cap + the root's slot taken
		t.Errorf("dropped = %d, want 6", views[0].Dropped)
	}
}

func TestSnapshotFilters(t *testing.T) {
	p := NewSpanPlane(SpanConfig{Enabled: true, SlowThreshold: -1, SampleEvery: -1})
	idA, idB := mkTrace(1, 0), mkTrace(2, 1)
	p.Finish(p.StartTrace(idA, SpanID{}, "op.a"), "bad")
	p.Finish(p.StartTrace(idB, SpanID{}, "op.b"), "worse")

	if v := p.Snapshot(SpanFilter{Trace: idA}); len(v) != 1 || v[0].RootOp != "op.a" {
		t.Errorf("trace filter = %+v", v)
	}
	if v := p.Snapshot(SpanFilter{Op: "op.b"}); len(v) != 1 || v[0].RootOp != "op.b" {
		t.Errorf("op filter = %+v", v)
	}
	if v := p.Snapshot(SpanFilter{MinDur: time.Hour}); len(v) != 0 {
		t.Errorf("min-dur filter = %+v", v)
	}
	if v := p.Snapshot(SpanFilter{Limit: 1}); len(v) != 1 {
		t.Errorf("limit = %+v", v)
	}
}

func TestNilPlaneAndInvalidHandle(t *testing.T) {
	var p *SpanPlane
	h := p.StartTrace(NewTraceID(), SpanID{}, "op")
	if h.Valid() {
		t.Fatal("nil plane returned a valid handle")
	}
	// Every method must no-op without panicking.
	ref := h.StartSpan("x", NoSpan)
	h.EndSpan(ref)
	h.FailSpan(ref, "e")
	h.Observe("y", NoSpan, time.Now(), 0, 0)
	h.SetAttr(ref, 1)
	p.Finish(h, "")
	if s, r, d := p.Stats(); s+r+d != 0 {
		t.Error("nil plane stats non-zero")
	}
	if p.Retained() != 0 || p.Snapshot(SpanFilter{}) != nil {
		t.Error("nil plane retains trees")
	}
	if NewSpanPlane(SpanConfig{}) != nil {
		t.Error("disabled config built a plane")
	}
}

// TestConcurrentSpanPlaneSoak hammers one small plane from many goroutines
// — tracing, finishing, snapshotting, and deliberately misusing stale
// handles — so the race detector can check every lock in the plane.
func TestConcurrentSpanPlaneSoak(t *testing.T) {
	p := NewSpanPlane(SpanConfig{Enabled: true, Capacity: 64, SlowThreshold: -1, SampleEvery: 2})
	const (
		workers = 8
		rounds  = 400
	)
	var wg sync.WaitGroup
	stale := make(chan Handle, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				h := p.StartTrace(TraceID{}, SpanID{}, "soak")
				ref := h.StartSpan("child", NoSpan)
				h.Under(ref).Observe("leaf", NoSpan, time.Now(), time.Microsecond, int64(i))
				h.SetAttr(ref, int64(w))
				h.EndSpan(ref)
				var errMsg string
				if i%7 == 0 {
					errMsg = "induced"
				}
				p.Finish(h, errMsg)
				// Keep some finished handles around for other goroutines to
				// abuse after their trees are recycled.
				select {
				case stale <- h:
				default:
					select {
					case old := <-stale:
						old.StartSpan("stale", NoSpan)
						old.FailSpan(old.Root(), "stale")
						_ = old.Trace()
					default:
					}
				}
				if i%16 == 0 {
					p.Snapshot(SpanFilter{Limit: 8})
					p.Retained()
					p.Stats()
				}
			}
		}(w)
	}
	wg.Wait()

	started, retained, discarded := p.Stats()
	if started != workers*rounds {
		t.Fatalf("started = %d, want %d", started, workers*rounds)
	}
	if retained+discarded != started {
		t.Fatalf("retained %d + discarded %d != started %d", retained, discarded, started)
	}
	if got := p.Retained(); got > 64 {
		t.Fatalf("ring holds %d trees, over capacity 64", got)
	}
	for _, tv := range p.Snapshot(SpanFilter{Limit: 1000}) {
		if tv.RootOp != "soak" {
			t.Fatalf("corrupted root op %q", tv.RootOp)
		}
		for _, sp := range tv.Spans {
			switch sp.Op {
			case "soak", "child", "leaf":
			default:
				t.Fatalf("foreign span %q leaked into a retained tree", sp.Op)
			}
		}
	}
}
