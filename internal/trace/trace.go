// Package trace records the lifecycle of every task flowing through the
// dispatch core — submit → persist → enqueue → lease → answer →
// agreement → complete/cancel/expire — into a bounded, striped ring
// buffer. The recorder is the auditability substrate the dispatch service
// exposes at GET /v1/tasks/{id}/trace: cheap enough to stay on in
// production (one striped append per event, no allocation beyond the
// pre-sized ring), bounded by construction, and queryable per task.
//
// Events for one task always land on the stripe its ID hashes to, so a
// per-task query locks exactly one stripe and returns events already in
// append order. A global atomic sequence number gives every event a total
// order that survives merging stripes.
//
// The recorder also derives the three stage-latency distributions the GWAP
// evaluation cares about — time-in-queue (enqueue → first lease),
// lease-to-answer (per worker), and answers-to-completion (first answer →
// done) — from the event stream itself, under the same stripe lock the
// append already holds, so no second lock is ever taken on the hot path.
//
// All methods are nil-safe: a nil *Recorder records nothing and answers
// every query empty, so call sites never need a guard.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"humancomp/internal/metrics"
	"humancomp/internal/task"
)

// Stage names one step of a task's lifecycle.
type Stage string

// Lifecycle stages, in the order a healthy task visits them. Release and
// Expire interleave with Lease; Gold fires on agreement checks against a
// gold probe; Aggregate fires when a consumer reads the combined answers.
const (
	StageSubmit    Stage = "submit"
	StagePersist   Stage = "persist"
	StageEnqueue   Stage = "enqueue"
	StageLease     Stage = "lease"
	StageAnswer    Stage = "answer"
	StageRelease   Stage = "release"
	StageExpire    Stage = "expire"
	StageGold      Stage = "gold"
	StageAggregate Stage = "aggregate"
	StageComplete  Stage = "complete"
	StageCancel    Stage = "cancel"
)

// Event is one recorded lifecycle step. Trace, when non-zero, links the
// event to the request-scoped span tree that caused it, joining the
// per-task timeline to GET /v1/debug/spans.
type Event struct {
	Seq    uint64    `json:"seq"`
	TaskID task.ID   `json:"task_id"`
	Stage  Stage     `json:"stage"`
	At     time.Time `json:"at"`
	Shard  int       `json:"shard"`
	Worker string    `json:"worker,omitempty"`
	Trace  TraceID   `json:"trace,omitempty"`
}

// traceStripes is the number of independently locked ring stripes. Power
// of two so stripe selection is a mask.
const traceStripes = 16

// DefaultCapacity is the total event capacity a zero-configured recorder
// gets: enough for the recent history of tens of thousands of task steps
// at ~64 bytes per slot.
const DefaultCapacity = 1 << 14

// pending carries the per-task timestamps the stage-latency histograms are
// derived from. It lives in the stripe map only while the task is open and
// is recycled through the stripe's freelist afterwards, so steady-state
// tracing allocates nothing. The single outstanding lease of the common
// case is held inline; concurrent extra leases spill to a lazily
// allocated overflow map.
type pending struct {
	enqueuedAt  time.Time
	firstAnswer time.Time
	leased      bool // first lease observed
	// Inline slot for one outstanding lease.
	has0 bool
	w0   string
	t0   time.Time
	// Overflow for additional concurrent leases; nil until needed.
	more map[string]time.Time
}

// setLease records an outstanding lease for the worker.
func (p *pending) setLease(worker string, at time.Time) {
	if !p.has0 || p.w0 == worker {
		p.has0, p.w0, p.t0 = true, worker, at
		return
	}
	if p.more == nil {
		p.more = make(map[string]time.Time, 2)
	}
	p.more[worker] = at
}

// takeLease removes and returns the worker's outstanding lease time.
func (p *pending) takeLease(worker string) (time.Time, bool) {
	if p.has0 && p.w0 == worker {
		p.has0 = false
		return p.t0, true
	}
	if at, ok := p.more[worker]; ok {
		delete(p.more, worker)
		return at, true
	}
	return time.Time{}, false
}

// reset clears the entry for reuse, keeping the overflow map's storage.
func (p *pending) reset() {
	for w := range p.more {
		delete(p.more, w)
	}
	*p = pending{more: p.more}
}

// stripe is one independently locked slice of the recorder: a fixed-size
// ring of events plus the open-task latency table for the task IDs that
// hash here.
type stripe struct {
	mu   sync.Mutex
	ring []Event // fixed capacity, len == cap once full
	next int     // ring slot the next event overwrites
	full bool
	open map[task.ID]*pending
	free []*pending // recycled pending entries, bounded by maxPending

	_ [32]byte // keep adjacent stripe mutexes off one cache line
}

// getPending returns a cleared entry, reusing a recycled one when possible.
func (s *stripe) getPending() *pending {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free = s.free[:n-1]
		return p
	}
	return &pending{}
}

// putPending recycles an entry closed by complete/cancel.
func (s *stripe) putPending(p *pending, limit int) {
	if len(s.free) < limit {
		p.reset()
		s.free = append(s.free, p)
	}
}

// Recorder is a bounded, striped ring buffer of task lifecycle events.
type Recorder struct {
	seq        atomic.Uint64
	perStripe  int // ring slots per stripe
	maxPending int // open-task latency entries per stripe
	stripes    [traceStripes]stripe

	inQueue       *metrics.LatencyHist // enqueue → first lease
	leaseToAnswer *metrics.LatencyHist // lease → answer per worker
	toCompletion  *metrics.LatencyHist // first answer → done

	// Exemplars pair each stage histogram with the trace ID of the most
	// recent observation per bucket, fed from Event.Trace.
	exInQueue       metrics.ExemplarSet
	exLeaseToAnswer metrics.ExemplarSet
	exToCompletion  metrics.ExemplarSet
}

// NewRecorder returns a recorder bounded at capacity events in total
// (rounded up to a multiple of the stripe count); capacity <= 0 selects
// DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := (capacity + traceStripes - 1) / traceStripes
	r := &Recorder{
		perStripe:     per,
		maxPending:    per,
		inQueue:       new(metrics.LatencyHist),
		leaseToAnswer: new(metrics.LatencyHist),
		toCompletion:  new(metrics.LatencyHist),
	}
	for i := range r.stripes {
		r.stripes[i].ring = make([]Event, 0, per)
		r.stripes[i].open = make(map[task.ID]*pending)
	}
	return r
}

// Capacity returns the total number of ring slots, 0 on a nil recorder.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return r.perStripe * traceStripes
}

func (r *Recorder) stripeFor(id task.ID) *stripe {
	return &r.stripes[uint64(id)&(traceStripes-1)]
}

// Append records one lifecycle event, stamping its global sequence number.
// The oldest event on the owning stripe is evicted once the stripe's ring
// is full. Nil-safe and allocation-free on the steady-state path.
func (r *Recorder) Append(e Event) {
	if r == nil {
		return
	}
	e.Seq = r.seq.Add(1)
	s := r.stripeFor(e.TaskID)
	s.mu.Lock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, e)
	} else {
		s.full = true
		s.ring[s.next] = e
		s.next++
		if s.next == cap(s.ring) {
			s.next = 0
		}
	}
	r.observeLocked(s, e)
	s.mu.Unlock()
}

// observeLocked updates the open-task latency table for e and feeds the
// stage histograms. Called with the stripe lock held.
func (r *Recorder) observeLocked(s *stripe, e Event) {
	switch e.Stage {
	case StageEnqueue:
		if len(s.open) < r.maxPending {
			p := s.getPending()
			p.enqueuedAt = e.At
			s.open[e.TaskID] = p
		}
	case StageLease:
		p := s.open[e.TaskID]
		if p == nil {
			return
		}
		if !p.leased {
			p.leased = true
			d := e.At.Sub(p.enqueuedAt)
			r.inQueue.Observe(d)
			if !e.Trace.IsZero() {
				r.exInQueue.Observe(d, e.Trace.Hex())
			}
		}
		p.setLease(e.Worker, e.At)
	case StageAnswer:
		p := s.open[e.TaskID]
		if p == nil {
			return
		}
		if at, ok := p.takeLease(e.Worker); ok {
			d := e.At.Sub(at)
			r.leaseToAnswer.Observe(d)
			if !e.Trace.IsZero() {
				r.exLeaseToAnswer.Observe(d, e.Trace.Hex())
			}
		}
		if p.firstAnswer.IsZero() {
			p.firstAnswer = e.At
		}
	case StageRelease, StageExpire:
		if p := s.open[e.TaskID]; p != nil {
			p.takeLease(e.Worker)
		}
	case StageComplete:
		if p := s.open[e.TaskID]; p != nil {
			if !p.firstAnswer.IsZero() {
				d := e.At.Sub(p.firstAnswer)
				r.toCompletion.Observe(d)
				if !e.Trace.IsZero() {
					r.exToCompletion.Observe(d, e.Trace.Hex())
				}
			}
			delete(s.open, e.TaskID)
			s.putPending(p, r.maxPending)
		}
	case StageCancel:
		if p := s.open[e.TaskID]; p != nil {
			delete(s.open, e.TaskID)
			s.putPending(p, r.maxPending)
		}
	}
}

// TaskEvents returns every retained event for the task, oldest first.
// Eviction trims from the front of a task's timeline, never the middle, so
// what remains is always a contiguous suffix of the true lifecycle.
func (r *Recorder) TaskEvents(id task.ID) []Event {
	if r == nil {
		return nil
	}
	s := r.stripeFor(id)
	var out []Event
	s.mu.Lock()
	// Ring order is append order: [next, len) is the older half once the
	// ring has wrapped, [0, next) the newer.
	if s.full {
		for _, e := range s.ring[s.next:] {
			if e.TaskID == id {
				out = append(out, e)
			}
		}
		for _, e := range s.ring[:s.next] {
			if e.TaskID == id {
				out = append(out, e)
			}
		}
	} else {
		for _, e := range s.ring {
			if e.TaskID == id {
				out = append(out, e)
			}
		}
	}
	s.mu.Unlock()
	return out
}

// Len returns the number of events currently retained across all stripes.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		n += len(s.ring)
		s.mu.Unlock()
	}
	return n
}

// Latencies exposes the stage-latency histograms: time-in-queue (enqueue
// → first lease), lease-to-answer, and answers-to-completion (first
// answer → done). Nil on a nil recorder.
func (r *Recorder) Latencies() (inQueue, leaseToAnswer, answersToCompletion *metrics.LatencyHist) {
	if r == nil {
		return nil, nil, nil
	}
	return r.inQueue, r.leaseToAnswer, r.toCompletion
}

// StageExemplars exposes the exemplar sets paired with the stage
// histograms, in the same order as Latencies. Nil on a nil recorder.
func (r *Recorder) StageExemplars() (inQueue, leaseToAnswer, answersToCompletion *metrics.ExemplarSet) {
	if r == nil {
		return nil, nil, nil
	}
	return &r.exInQueue, &r.exLeaseToAnswer, &r.exToCompletion
}
