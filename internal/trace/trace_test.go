package trace

import (
	"sync"
	"testing"
	"time"

	"humancomp/internal/task"
)

var t0 = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Append(Event{TaskID: 1, Stage: StageSubmit, At: t0})
	if got := r.TaskEvents(1); got != nil {
		t.Errorf("nil recorder TaskEvents = %v, want nil", got)
	}
	if r.Len() != 0 || r.Capacity() != 0 {
		t.Errorf("nil recorder Len/Capacity = %d/%d, want 0/0", r.Len(), r.Capacity())
	}
	a, b, c := r.Latencies()
	if a != nil || b != nil || c != nil {
		t.Error("nil recorder Latencies should be all nil")
	}
}

func TestAppendOrderAndSeq(t *testing.T) {
	r := NewRecorder(0)
	if r.Capacity() != DefaultCapacity {
		t.Fatalf("Capacity = %d, want %d", r.Capacity(), DefaultCapacity)
	}
	stages := []Stage{StageSubmit, StagePersist, StageEnqueue, StageLease, StageAnswer, StageComplete}
	for i, st := range stages {
		r.Append(Event{TaskID: 7, Stage: st, At: t0.Add(time.Duration(i) * time.Second), Worker: "w"})
	}
	// An event for another task on the same stripe (7+16 hashes identically)
	// must not appear in task 7's timeline.
	r.Append(Event{TaskID: 7 + traceStripes, Stage: StageSubmit, At: t0})

	got := r.TaskEvents(7)
	if len(got) != len(stages) {
		t.Fatalf("TaskEvents returned %d events, want %d", len(got), len(stages))
	}
	var prevSeq uint64
	for i, e := range got {
		if e.Stage != stages[i] {
			t.Errorf("event %d stage = %q, want %q", i, e.Stage, stages[i])
		}
		if e.Seq <= prevSeq {
			t.Errorf("event %d seq %d not increasing past %d", i, e.Seq, prevSeq)
		}
		prevSeq = e.Seq
	}
}

func TestRingEvictionKeepsSuffix(t *testing.T) {
	// Tiny ring: one slot per stripe.
	r := NewRecorder(traceStripes)
	id := task.ID(3)
	for i := 0; i < 5; i++ {
		r.Append(Event{TaskID: id, Stage: StageLease, At: t0.Add(time.Duration(i) * time.Second)})
	}
	got := r.TaskEvents(id)
	if len(got) != 1 {
		t.Fatalf("retained %d events, want 1 (stripe capacity)", len(got))
	}
	// Eviction trims oldest first: the survivor is the newest append.
	if want := t0.Add(4 * time.Second); !got[0].At.Equal(want) {
		t.Errorf("survivor At = %v, want %v", got[0].At, want)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestRingEvictionOrderAfterWrap(t *testing.T) {
	// Three slots per stripe; six events for one task: the retained three
	// must be the newest three, still oldest-first.
	r := NewRecorder(3 * traceStripes)
	id := task.ID(5)
	for i := 0; i < 6; i++ {
		r.Append(Event{TaskID: id, Stage: StageLease, At: t0.Add(time.Duration(i) * time.Minute)})
	}
	got := r.TaskEvents(id)
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, e := range got {
		want := t0.Add(time.Duration(3+i) * time.Minute)
		if !e.At.Equal(want) {
			t.Errorf("event %d At = %v, want %v", i, e.At, want)
		}
		if i > 0 && e.Seq <= got[i-1].Seq {
			t.Errorf("event %d seq %d out of order", i, e.Seq)
		}
	}
}

func TestConcurrentAppendAndQuery(t *testing.T) {
	const (
		writers       = 8
		perWriter     = 500
		tasksPerSweep = 32
	)
	r := NewRecorder(1024)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := task.ID(i % tasksPerSweep)
				r.Append(Event{TaskID: id, Stage: StageLease, At: t0, Worker: "w"})
				if i%16 == 0 {
					r.TaskEvents(id)
					r.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if got, capTotal := r.Len(), r.Capacity(); got > capTotal {
		t.Fatalf("Len %d exceeds capacity %d", got, capTotal)
	}
	// Per-task sequence numbers must be strictly increasing even after the
	// concurrent storm wrapped the ring many times over.
	for id := task.ID(0); id < tasksPerSweep; id++ {
		events := r.TaskEvents(id)
		for i := 1; i < len(events); i++ {
			if events[i].Seq <= events[i-1].Seq {
				t.Fatalf("task %d events out of seq order at %d: %d then %d",
					id, i, events[i-1].Seq, events[i].Seq)
			}
		}
	}
}

func TestStageLatencies(t *testing.T) {
	r := NewRecorder(0)
	id := task.ID(9)
	r.Append(Event{TaskID: id, Stage: StageEnqueue, At: t0})
	r.Append(Event{TaskID: id, Stage: StageLease, At: t0.Add(2 * time.Second), Worker: "a"})
	r.Append(Event{TaskID: id, Stage: StageAnswer, At: t0.Add(5 * time.Second), Worker: "a"})
	r.Append(Event{TaskID: id, Stage: StageLease, At: t0.Add(6 * time.Second), Worker: "b"})
	r.Append(Event{TaskID: id, Stage: StageAnswer, At: t0.Add(10 * time.Second), Worker: "b"})
	r.Append(Event{TaskID: id, Stage: StageComplete, At: t0.Add(10 * time.Second)})

	inQueue, leaseToAnswer, toCompletion := r.Latencies()
	if got := inQueue.Count(); got != 1 {
		t.Errorf("inQueue count = %d, want 1 (first lease only)", got)
	}
	if got := inQueue.Max(); got != 2*time.Second {
		t.Errorf("inQueue = %v, want 2s", got)
	}
	if got := leaseToAnswer.Count(); got != 2 {
		t.Errorf("leaseToAnswer count = %d, want 2", got)
	}
	if got := leaseToAnswer.Max(); got != 4*time.Second {
		t.Errorf("leaseToAnswer max = %v, want 4s", got)
	}
	// First answer at +5s, completion at +10s.
	if got := toCompletion.Max(); got != 5*time.Second {
		t.Errorf("toCompletion = %v, want 5s", got)
	}
	// Completion closes the pending entry: later events observe nothing.
	r.Append(Event{TaskID: id, Stage: StageLease, At: t0.Add(20 * time.Second), Worker: "c"})
	if got := inQueue.Count(); got != 1 {
		t.Errorf("inQueue count after completion = %d, want 1", got)
	}
}

func TestReleaseAndExpireDropLeaseSpans(t *testing.T) {
	r := NewRecorder(0)
	id := task.ID(11)
	r.Append(Event{TaskID: id, Stage: StageEnqueue, At: t0})
	r.Append(Event{TaskID: id, Stage: StageLease, At: t0.Add(time.Second), Worker: "a"})
	r.Append(Event{TaskID: id, Stage: StageRelease, At: t0.Add(2 * time.Second), Worker: "a"})
	// The worker answers long after releasing: no lease span may be recorded.
	r.Append(Event{TaskID: id, Stage: StageAnswer, At: t0.Add(90 * time.Second), Worker: "a"})
	_, leaseToAnswer, _ := r.Latencies()
	if got := leaseToAnswer.Count(); got != 0 {
		t.Errorf("leaseToAnswer count after release = %d, want 0", got)
	}
}
