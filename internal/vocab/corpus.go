package vocab

import (
	"fmt"

	"humancomp/internal/rng"
)

// Rect is an axis-aligned rectangle in image pixel coordinates.
// X, Y is the top-left corner; the rectangle spans [X, X+W) × [Y, Y+H).
type Rect struct {
	X, Y, W, H int
}

// Contains reports whether the point (x, y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// Area returns the rectangle's area in pixels.
func (r Rect) Area() int {
	if r.W <= 0 || r.H <= 0 {
		return 0
	}
	return r.W * r.H
}

// Intersect returns the intersection of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	x1 := max(r.X, o.X)
	y1 := max(r.Y, o.Y)
	x2 := min(r.X+r.W, o.X+o.W)
	y2 := min(r.Y+r.H, o.Y+o.H)
	if x2 <= x1 || y2 <= y1 {
		return Rect{}
	}
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// IoU returns the intersection-over-union of r and o in [0, 1].
// It is the standard object-localization score used to evaluate
// Peekaboom's aggregated bounding boxes against ground truth.
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	union := r.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Object is a ground-truth object inside an image.
type Object struct {
	Tag      int     // lexicon word ID naming the object
	Box      Rect    // true location
	Salience float64 // relative probability a human mentions this object
}

// Image is a synthetic image: a canvas with ground-truth objects and a
// latent aesthetic score used by the Matchin preference game.
type Image struct {
	ID        int
	Width     int
	Height    int
	Objects   []Object
	Aesthetic float64 // in (0, 1); higher images win Matchin comparisons more often
}

// Corpus is a deterministic synthetic image collection over a Lexicon.
type Corpus struct {
	Lexicon *Lexicon
	Images  []Image
}

// CorpusConfig parameterizes NewCorpus.
type CorpusConfig struct {
	Lexicon     LexiconConfig
	NumImages   int
	MeanObjects float64 // Poisson mean number of objects per image (min 1)
	CanvasW     int
	CanvasH     int
	Seed        uint64
}

// DefaultCorpusConfig returns the corpus used by the experiments: 2,000
// images on a 640×480 canvas averaging four objects each.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Lexicon:     DefaultLexiconConfig(),
		NumImages:   2000,
		MeanObjects: 4,
		CanvasW:     640,
		CanvasH:     480,
		Seed:        2,
	}
}

// NewCorpus builds a deterministic corpus from cfg.
func NewCorpus(cfg CorpusConfig) *Corpus {
	if cfg.NumImages <= 0 {
		panic("vocab: corpus must contain at least one image")
	}
	if cfg.CanvasW <= 0 || cfg.CanvasH <= 0 {
		panic("vocab: corpus canvas dimensions must be positive")
	}
	lex := NewLexicon(cfg.Lexicon)
	src := rng.New(cfg.Seed)
	c := &Corpus{Lexicon: lex, Images: make([]Image, cfg.NumImages)}
	for i := range c.Images {
		n := src.Poisson(cfg.MeanObjects)
		if n < 1 {
			n = 1
		}
		img := Image{
			ID:        i,
			Width:     cfg.CanvasW,
			Height:    cfg.CanvasH,
			Objects:   make([]Object, 0, n),
			Aesthetic: src.Float64(),
		}
		seen := make(map[int]bool, n)
		for len(img.Objects) < n {
			tag := lex.SampleFrom(src)
			if seen[lex.Canonical(tag)] {
				// Re-draw rather than place two copies of one concept; a
				// bounded number of retries keeps generation total.
				if len(seen) >= lex.Size() {
					break
				}
				continue
			}
			seen[lex.Canonical(tag)] = true
			w := 20 + src.Intn(cfg.CanvasW/2)
			h := 20 + src.Intn(cfg.CanvasH/2)
			box := Rect{
				X: src.Intn(cfg.CanvasW - w),
				Y: src.Intn(cfg.CanvasH - h),
				W: w,
				H: h,
			}
			// Salience decays with draw order: the first-drawn (most
			// popular) objects are also the ones players notice first.
			sal := 1.0 / float64(len(img.Objects)+1)
			img.Objects = append(img.Objects, Object{Tag: tag, Box: box, Salience: sal})
		}
		c.Images[i] = img
	}
	return c
}

// Image returns the image with the given ID; it panics on out-of-range IDs.
func (c *Corpus) Image(id int) *Image {
	if id < 0 || id >= len(c.Images) {
		panic(fmt.Sprintf("vocab: image ID %d out of range [0,%d)", id, len(c.Images)))
	}
	return &c.Images[id]
}

// IsTrueTag reports whether word names an object in the image, accepting
// synonyms: "couch" counts when the ground truth says "sofa".
func (c *Corpus) IsTrueTag(imageID, word int) bool {
	img := c.Image(imageID)
	for _, o := range img.Objects {
		if c.Lexicon.AreSynonyms(o.Tag, word) {
			return true
		}
	}
	return false
}

// TrueBox returns the ground-truth box for the object named by word in the
// image (synonym-aware), and whether such an object exists.
func (c *Corpus) TrueBox(imageID, word int) (Rect, bool) {
	img := c.Image(imageID)
	for _, o := range img.Objects {
		if c.Lexicon.AreSynonyms(o.Tag, word) {
			return o.Box, true
		}
	}
	return Rect{}, false
}
