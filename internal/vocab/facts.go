package vocab

import (
	"humancomp/internal/rng"
)

// Relation is the kind of a common-sense fact, mirroring the sentence
// templates Verbosity shows to its describer ("___ is a kind of ___",
// "___ is used for ___", ...).
type Relation int

// The relations collected by Verbosity's templates.
const (
	IsA Relation = iota
	UsedFor
	HasPart
	FoundNear
	RelatedTo
	numRelations
)

// String returns the Verbosity sentence-template form of the relation.
func (r Relation) String() string {
	switch r {
	case IsA:
		return "is a kind of"
	case UsedFor:
		return "is used for"
	case HasPart:
		return "has"
	case FoundNear:
		return "is found near"
	case RelatedTo:
		return "is related to"
	default:
		return "unknown relation"
	}
}

// Relations returns all fact relations in template order.
func Relations() []Relation {
	return []Relation{IsA, UsedFor, HasPart, FoundNear, RelatedTo}
}

// Fact is a common-sense triple about a subject concept.
type Fact struct {
	Subject  int // lexicon word ID
	Relation Relation
	Object   int // lexicon word ID
}

// FactBase is a deterministic synthetic common-sense knowledge base:
// the ground truth Verbosity's guesser is trying to reach. Each concept
// has a handful of true facts across the relation templates.
type FactBase struct {
	Lexicon *Lexicon
	facts   map[int][]Fact // by subject
	index   map[Fact]bool
}

// FactBaseConfig parameterizes NewFactBase.
type FactBaseConfig struct {
	Lexicon      LexiconConfig
	FactsPerWord float64 // Poisson mean, min 2
	Seed         uint64
}

// DefaultFactBaseConfig returns the fact base used by the experiments.
func DefaultFactBaseConfig() FactBaseConfig {
	return FactBaseConfig{Lexicon: DefaultLexiconConfig(), FactsPerWord: 5, Seed: 3}
}

// NewFactBase builds a deterministic fact base from cfg.
func NewFactBase(cfg FactBaseConfig) *FactBase {
	lex := NewLexicon(cfg.Lexicon)
	src := rng.New(cfg.Seed)
	fb := &FactBase{
		Lexicon: lex,
		facts:   make(map[int][]Fact, lex.Size()),
		index:   make(map[Fact]bool),
	}
	for subj := 0; subj < lex.Size(); subj++ {
		n := src.Poisson(cfg.FactsPerWord)
		if n < 2 {
			n = 2
		}
		// Retry duplicate or self-referential draws so every concept ends
		// up with its full quota; the attempt bound keeps generation total
		// even on tiny lexicons.
		for added, attempts := 0, 0; added < n && attempts < 20*n; attempts++ {
			f := Fact{
				Subject:  subj,
				Relation: Relation(src.Intn(int(numRelations))),
				Object:   lex.SampleFrom(src),
			}
			if f.Object == subj || fb.index[f] {
				continue
			}
			fb.index[f] = true
			fb.facts[subj] = append(fb.facts[subj], f)
			added++
		}
	}
	return fb
}

// Facts returns the true facts about subject. The slice must not be modified.
func (fb *FactBase) Facts(subject int) []Fact { return fb.facts[subject] }

// IsTrue reports whether the fact holds, accepting synonym substitutions
// for the object ("a cat is found near a sofa" ≡ "... near a couch").
func (fb *FactBase) IsTrue(f Fact) bool {
	if fb.index[f] {
		return true
	}
	for _, syn := range fb.Lexicon.Synonyms(f.Object) {
		if fb.index[Fact{Subject: f.Subject, Relation: f.Relation, Object: syn}] {
			return true
		}
	}
	return false
}

// NumFacts returns the total number of facts in the base.
func (fb *FactBase) NumFacts() int { return len(fb.index) }
