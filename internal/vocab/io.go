package vocab

import (
	"encoding/json"
	"fmt"
	"io"
)

// corpusFile is the JSON wire format of an exported corpus: the lexicon is
// stored by configuration (it is deterministic in it), the images by value.
// This is the dataset interchange format — a labeled run can be exported,
// inspected with standard tools, and re-imported elsewhere.
type corpusFile struct {
	Version int           `json:"version"`
	Lexicon LexiconConfig `json:"lexicon"`
	Images  []Image       `json:"images"`
}

const corpusFileVersion = 1

// ExportCorpus writes the corpus as JSON. The lexicon travels as its
// generating configuration, so the file stays compact.
func ExportCorpus(w io.Writer, c *Corpus, lexCfg LexiconConfig) error {
	f := corpusFile{Version: corpusFileVersion, Lexicon: lexCfg, Images: c.Images}
	return json.NewEncoder(w).Encode(f)
}

// ImportCorpus reads a corpus previously written by ExportCorpus.
func ImportCorpus(r io.Reader) (*Corpus, LexiconConfig, error) {
	var f corpusFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, LexiconConfig{}, fmt.Errorf("vocab: decoding corpus: %w", err)
	}
	if f.Version != corpusFileVersion {
		return nil, LexiconConfig{}, fmt.Errorf("vocab: unsupported corpus version %d", f.Version)
	}
	if len(f.Images) == 0 {
		return nil, LexiconConfig{}, fmt.Errorf("vocab: corpus file has no images")
	}
	lex := NewLexicon(f.Lexicon)
	for i, img := range f.Images {
		if img.ID != i {
			return nil, LexiconConfig{}, fmt.Errorf("vocab: image %d has ID %d; IDs must be dense", i, img.ID)
		}
		for _, o := range img.Objects {
			if o.Tag < 0 || o.Tag >= lex.Size() {
				return nil, LexiconConfig{}, fmt.Errorf("vocab: image %d references tag %d outside lexicon", i, o.Tag)
			}
		}
	}
	return &Corpus{Lexicon: lex, Images: f.Images}, f.Lexicon, nil
}
