// Package vocab provides the synthetic world model the simulator runs on:
// a lexicon of tags with Zipfian popularity and synonym structure, an image
// corpus with ground-truth objects and locations, and a common-sense fact
// base. It substitutes for the proprietary corpora of the deployed GWAP
// systems (see DESIGN.md §3): experiments need ground truth to score
// accuracy, and the statistical shape that drives agreement dynamics —
// a few head tags, a long tail, synonyms, salience — is preserved.
package vocab

import (
	"fmt"
	"strings"

	"humancomp/internal/rng"
)

// Word is a lexicon entry. Rank 0 is the most popular word.
type Word struct {
	ID   int
	Text string
	Rank int
}

// Lexicon is a fixed set of synthetic words with Zipfian popularity and
// synonym groups. Word IDs are dense in [0, Size).
type Lexicon struct {
	words     []Word
	canonical []int   // canonical[id] = representative ID of id's synonym group
	groups    [][]int // groups[g] = member IDs; indexed via groupOf
	groupOf   []int
	byText    map[string]int
	zipf      *rng.Zipf
	src       *rng.Source
}

// LexiconConfig parameterizes NewLexicon.
type LexiconConfig struct {
	Size        int     // number of words; must be > 0
	ZipfS       float64 // popularity skew; 1.0 is classic Zipf
	SynonymRate float64 // probability a word joins the previous word's group
	Seed        uint64
}

// DefaultLexiconConfig returns the configuration used by the experiments:
// 2,000 words, classic Zipf skew, and roughly one word in five sharing a
// synonym group with a neighbor.
func DefaultLexiconConfig() LexiconConfig {
	return LexiconConfig{Size: 2000, ZipfS: 1.0, SynonymRate: 0.2, Seed: 1}
}

// NewLexicon builds a deterministic lexicon from cfg.
func NewLexicon(cfg LexiconConfig) *Lexicon {
	if cfg.Size <= 0 {
		panic("vocab: lexicon size must be positive")
	}
	src := rng.New(cfg.Seed)
	lex := &Lexicon{
		words:     make([]Word, cfg.Size),
		canonical: make([]int, cfg.Size),
		groupOf:   make([]int, cfg.Size),
		byText:    make(map[string]int, cfg.Size),
		src:       src,
	}
	for i := 0; i < cfg.Size; i++ {
		text := syntheticWord(i)
		lex.words[i] = Word{ID: i, Text: text, Rank: i}
		lex.byText[text] = i
	}
	// Build synonym groups: consecutive words merge with probability
	// SynonymRate, giving geometric group sizes like real thesauri.
	g := -1
	for i := 0; i < cfg.Size; i++ {
		if i == 0 || !src.Bool(cfg.SynonymRate) {
			g++
			lex.groups = append(lex.groups, nil)
		}
		lex.groups[g] = append(lex.groups[g], i)
		lex.groupOf[i] = g
		lex.canonical[i] = lex.groups[g][0]
	}
	lex.zipf = rng.NewZipf(src.Split(), cfg.Size, cfg.ZipfS)
	return lex
}

// syntheticWord deterministically produces a pronounceable unique word for
// index i: base-(consonant×vowel) syllables, so word 0 is "ba", 1 is "be"...
func syntheticWord(i int) string {
	consonants := "bdfgklmnprstvz"
	vowels := "aeiou"
	n := i
	var b strings.Builder
	for {
		c := consonants[n%len(consonants)]
		n /= len(consonants)
		v := vowels[n%len(vowels)]
		n /= len(vowels)
		b.WriteByte(c)
		b.WriteByte(v)
		if n == 0 {
			break
		}
		n--
	}
	return b.String()
}

// Size returns the number of words.
func (l *Lexicon) Size() int { return len(l.words) }

// Word returns the word with the given ID; it panics on out-of-range IDs.
func (l *Lexicon) Word(id int) Word {
	if id < 0 || id >= len(l.words) {
		panic(fmt.Sprintf("vocab: word ID %d out of range [0,%d)", id, len(l.words)))
	}
	return l.words[id]
}

// Lookup returns the ID for text, or -1 if the text is not in the lexicon.
func (l *Lexicon) Lookup(text string) int {
	if id, ok := l.byText[text]; ok {
		return id
	}
	return -1
}

// Sample draws a word ID with Zipfian popularity (head words most likely).
func (l *Lexicon) Sample() int { return l.zipf.Draw() }

// SampleFrom draws a word ID with Zipfian popularity using the caller's
// source, leaving the lexicon's internal stream untouched.
func (l *Lexicon) SampleFrom(src *rng.Source) int {
	// The Zipf CDF is immutable; only the draw consumes randomness, so
	// rebuilding the search over the shared CDF with the caller's uniform
	// draw is cheap and keeps the lexicon read-only after construction.
	return l.zipf.DrawWith(src)
}

// Canonical returns the representative ID of id's synonym group. Two words
// are synonyms iff their Canonical IDs are equal.
func (l *Lexicon) Canonical(id int) int { return l.canonical[id] }

// Synonyms returns all IDs in id's synonym group, including id itself.
// The returned slice must not be modified.
func (l *Lexicon) Synonyms(id int) []int { return l.groups[l.groupOf[id]] }

// AreSynonyms reports whether a and b denote the same concept.
func (l *Lexicon) AreSynonyms(a, b int) bool { return l.canonical[a] == l.canonical[b] }

// Misspell returns text with a single character-level typo drawn from src:
// substitution, transposition, deletion or duplication. Words of length 1
// are returned unchanged.
func Misspell(text string, src *rng.Source) string {
	if len(text) < 2 {
		return text
	}
	b := []byte(text)
	switch src.Intn(4) {
	case 0: // substitute
		i := src.Intn(len(b))
		b[i] = byte('a' + src.Intn(26))
	case 1: // transpose
		i := src.Intn(len(b) - 1)
		b[i], b[i+1] = b[i+1], b[i]
	case 2: // delete
		i := src.Intn(len(b))
		b = append(b[:i], b[i+1:]...)
	default: // duplicate
		i := src.Intn(len(b))
		b = append(b[:i+1], b[i:]...)
	}
	return string(b)
}
