package vocab

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"humancomp/internal/rng"
)

func TestSyntheticWordsUnique(t *testing.T) {
	seen := make(map[string]int)
	for i := 0; i < 50000; i++ {
		w := syntheticWord(i)
		if prev, dup := seen[w]; dup {
			t.Fatalf("syntheticWord(%d) == syntheticWord(%d) == %q", i, prev, w)
		}
		seen[w] = i
	}
}

func TestLexiconDeterministic(t *testing.T) {
	cfg := DefaultLexiconConfig()
	a, b := NewLexicon(cfg), NewLexicon(cfg)
	for i := 0; i < a.Size(); i++ {
		if a.Word(i) != b.Word(i) || a.Canonical(i) != b.Canonical(i) {
			t.Fatalf("lexicons diverge at word %d", i)
		}
	}
}

func TestLexiconLookupRoundTrip(t *testing.T) {
	lex := NewLexicon(LexiconConfig{Size: 500, ZipfS: 1, Seed: 9})
	for i := 0; i < lex.Size(); i++ {
		if got := lex.Lookup(lex.Word(i).Text); got != i {
			t.Fatalf("Lookup(Word(%d).Text) = %d", i, got)
		}
	}
	if lex.Lookup("no-such-word!") != -1 {
		t.Error("Lookup of unknown text should be -1")
	}
}

func TestSynonymRelationIsEquivalence(t *testing.T) {
	lex := NewLexicon(LexiconConfig{Size: 300, ZipfS: 1, SynonymRate: 0.5, Seed: 4})
	for id := 0; id < lex.Size(); id++ {
		group := lex.Synonyms(id)
		found := false
		for _, m := range group {
			if m == id {
				found = true
			}
			if !lex.AreSynonyms(id, m) {
				t.Fatalf("group member %d not synonym of %d", m, id)
			}
			if lex.Canonical(m) != lex.Canonical(id) {
				t.Fatalf("canonical mismatch within group of %d", id)
			}
		}
		if !found {
			t.Fatalf("word %d missing from its own synonym group", id)
		}
	}
}

func TestSynonymRateZeroMeansSingletons(t *testing.T) {
	lex := NewLexicon(LexiconConfig{Size: 100, ZipfS: 1, SynonymRate: 0, Seed: 5})
	for id := 0; id < lex.Size(); id++ {
		if len(lex.Synonyms(id)) != 1 || lex.Canonical(id) != id {
			t.Fatalf("word %d should be its own singleton group", id)
		}
	}
}

func TestSampleZipfSkew(t *testing.T) {
	lex := NewLexicon(DefaultLexiconConfig())
	counts := make([]int, lex.Size())
	for i := 0; i < 100000; i++ {
		counts[lex.Sample()]++
	}
	if counts[0] <= counts[500] {
		t.Errorf("head word sampled %d times, mid word %d — expected Zipf skew", counts[0], counts[500])
	}
}

func TestSampleFromDoesNotPerturbLexicon(t *testing.T) {
	lexA := NewLexicon(DefaultLexiconConfig())
	lexB := NewLexicon(DefaultLexiconConfig())
	ext := rng.New(99)
	for i := 0; i < 100; i++ {
		lexA.SampleFrom(ext) // external draws must not touch internal stream
	}
	for i := 0; i < 100; i++ {
		if lexA.Sample() != lexB.Sample() {
			t.Fatal("SampleFrom perturbed the lexicon's own stream")
		}
	}
}

func TestMisspellProperties(t *testing.T) {
	src := rng.New(6)
	f := func(raw uint16) bool {
		w := syntheticWord(int(raw))
		m := Misspell(w, src)
		// A typo changes length by at most one character.
		d := len(m) - len(w)
		return d >= -1 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Misspell("a", src) != "a" {
		t.Error("single-char word should be unchanged")
	}
}

func TestRectGeometry(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 10, H: 10}
	b := Rect{X: 5, Y: 5, W: 10, H: 10}
	if got := a.Intersect(b); got != (Rect{X: 5, Y: 5, W: 5, H: 5}) {
		t.Errorf("Intersect = %+v", got)
	}
	if iou := a.IoU(b); iou < 0.14 || iou > 0.15 { // 25 / 175
		t.Errorf("IoU = %v, want 25/175", iou)
	}
	if a.IoU(a) != 1 {
		t.Error("self IoU should be 1")
	}
	far := Rect{X: 100, Y: 100, W: 5, H: 5}
	if a.IoU(far) != 0 {
		t.Error("disjoint IoU should be 0")
	}
	if !a.Contains(0, 0) || a.Contains(10, 10) {
		t.Error("Contains bounds wrong")
	}
	if (Rect{W: -3, H: 5}).Area() != 0 {
		t.Error("degenerate rect area should be 0")
	}
}

func TestRectIoUSymmetric(t *testing.T) {
	src := rng.New(7)
	f := func() bool {
		a := Rect{X: src.Intn(50), Y: src.Intn(50), W: 1 + src.Intn(50), H: 1 + src.Intn(50)}
		b := Rect{X: src.Intn(50), Y: src.Intn(50), W: 1 + src.Intn(50), H: 1 + src.Intn(50)}
		iou := a.IoU(b)
		return iou == b.IoU(a) && iou >= 0 && iou <= 1
	}
	for i := 0; i < 500; i++ {
		if !f() {
			t.Fatal("IoU not symmetric or out of range")
		}
	}
}

func TestCorpusGroundTruth(t *testing.T) {
	c := NewCorpus(CorpusConfig{
		Lexicon:     LexiconConfig{Size: 200, ZipfS: 1, SynonymRate: 0.3, Seed: 1},
		NumImages:   100,
		MeanObjects: 3,
		CanvasW:     320,
		CanvasH:     240,
		Seed:        8,
	})
	for _, img := range c.Images {
		if len(img.Objects) == 0 {
			t.Fatalf("image %d has no objects", img.ID)
		}
		for _, o := range img.Objects {
			if o.Box.X < 0 || o.Box.Y < 0 ||
				o.Box.X+o.Box.W > img.Width || o.Box.Y+o.Box.H > img.Height {
				t.Fatalf("image %d object box %+v escapes canvas", img.ID, o.Box)
			}
			if !c.IsTrueTag(img.ID, o.Tag) {
				t.Fatalf("image %d: object tag not a true tag", img.ID)
			}
			// A synonym of the tag must also count as true.
			for _, syn := range c.Lexicon.Synonyms(o.Tag) {
				if !c.IsTrueTag(img.ID, syn) {
					t.Fatalf("image %d: synonym %d of tag %d rejected", img.ID, syn, o.Tag)
				}
			}
			box, ok := c.TrueBox(img.ID, o.Tag)
			if !ok || box != o.Box {
				t.Fatalf("image %d: TrueBox mismatch", img.ID)
			}
		}
		if img.Aesthetic < 0 || img.Aesthetic > 1 {
			t.Fatalf("image %d aesthetic %v out of range", img.ID, img.Aesthetic)
		}
	}
}

func TestCorpusNoDuplicateConceptsPerImage(t *testing.T) {
	c := NewCorpus(DefaultCorpusConfig())
	for _, img := range c.Images {
		seen := make(map[int]bool)
		for _, o := range img.Objects {
			can := c.Lexicon.Canonical(o.Tag)
			if seen[can] {
				t.Fatalf("image %d repeats concept %d", img.ID, can)
			}
			seen[can] = true
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.NumImages = 50
	a, b := NewCorpus(cfg), NewCorpus(cfg)
	for i := range a.Images {
		ai, bi := a.Images[i], b.Images[i]
		if ai.Aesthetic != bi.Aesthetic || len(ai.Objects) != len(bi.Objects) {
			t.Fatalf("corpora diverge at image %d", i)
		}
		for j := range ai.Objects {
			if ai.Objects[j] != bi.Objects[j] {
				t.Fatalf("corpora diverge at image %d object %d", i, j)
			}
		}
	}
}

func TestFactBaseTruth(t *testing.T) {
	fb := NewFactBase(FactBaseConfig{
		Lexicon:      LexiconConfig{Size: 300, ZipfS: 1, SynonymRate: 0.3, Seed: 1},
		FactsPerWord: 4,
		Seed:         11,
	})
	if fb.NumFacts() == 0 {
		t.Fatal("fact base is empty")
	}
	for subj := 0; subj < fb.Lexicon.Size(); subj++ {
		facts := fb.Facts(subj)
		if len(facts) < 2 {
			t.Fatalf("subject %d has %d facts, want >= 2", subj, len(facts))
		}
		for _, f := range facts {
			if f.Subject != subj {
				t.Fatalf("fact filed under wrong subject: %+v", f)
			}
			if f.Object == subj {
				t.Fatalf("self-referential fact: %+v", f)
			}
			if !fb.IsTrue(f) {
				t.Fatalf("stored fact not true: %+v", f)
			}
			// Synonym substitution on the object must be accepted.
			for _, syn := range fb.Lexicon.Synonyms(f.Object) {
				alt := Fact{Subject: f.Subject, Relation: f.Relation, Object: syn}
				if !fb.IsTrue(alt) {
					t.Fatalf("synonym-substituted fact rejected: %+v", alt)
				}
			}
		}
	}
}

func TestFactBaseRejectsRandomFacts(t *testing.T) {
	fb := NewFactBase(DefaultFactBaseConfig())
	src := rng.New(12)
	falsePositives := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		f := Fact{
			Subject:  src.Intn(fb.Lexicon.Size()),
			Relation: Relation(src.Intn(int(numRelations))),
			Object:   src.Intn(fb.Lexicon.Size()),
		}
		if fb.IsTrue(f) {
			falsePositives++
		}
	}
	// Random triples over a 2000-word lexicon are almost never true facts.
	if falsePositives > trials/20 {
		t.Errorf("%d/%d random facts judged true", falsePositives, trials)
	}
}

func TestRelationStrings(t *testing.T) {
	for _, r := range Relations() {
		if r.String() == "unknown relation" {
			t.Errorf("relation %d has no template string", r)
		}
	}
	if Relation(99).String() != "unknown relation" {
		t.Error("out-of-range relation should stringify as unknown")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewLexicon size 0", func() { NewLexicon(LexiconConfig{Size: 0}) })
	mustPanic("NewCorpus no images", func() {
		NewCorpus(CorpusConfig{Lexicon: LexiconConfig{Size: 10, Seed: 1}, NumImages: 0, CanvasW: 10, CanvasH: 10})
	})
	mustPanic("Word out of range", func() { NewLexicon(LexiconConfig{Size: 10, Seed: 1}).Word(10) })
	c := NewCorpus(CorpusConfig{Lexicon: LexiconConfig{Size: 10, Seed: 1}, NumImages: 1, MeanObjects: 1, CanvasW: 100, CanvasH: 100, Seed: 1})
	mustPanic("Image out of range", func() { c.Image(5) })
}

func TestCorpusExportImportRoundTrip(t *testing.T) {
	cfg := CorpusConfig{
		Lexicon:     LexiconConfig{Size: 100, ZipfS: 1, SynonymRate: 0.2, Seed: 3},
		NumImages:   40,
		MeanObjects: 3,
		CanvasW:     320, CanvasH: 240,
		Seed: 4,
	}
	c := NewCorpus(cfg)
	var buf bytes.Buffer
	if err := ExportCorpus(&buf, c, cfg.Lexicon); err != nil {
		t.Fatal(err)
	}
	got, lexCfg, err := ImportCorpus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lexCfg != cfg.Lexicon {
		t.Fatalf("lexicon config round trip: %+v", lexCfg)
	}
	if len(got.Images) != len(c.Images) {
		t.Fatalf("images = %d", len(got.Images))
	}
	for i := range c.Images {
		a, b := c.Images[i], got.Images[i]
		if a.Aesthetic != b.Aesthetic || len(a.Objects) != len(b.Objects) {
			t.Fatalf("image %d diverges", i)
		}
		for j := range a.Objects {
			if a.Objects[j] != b.Objects[j] {
				t.Fatalf("image %d object %d diverges", i, j)
			}
		}
	}
	// The reconstructed lexicon matches.
	if got.Lexicon.Size() != c.Lexicon.Size() || got.Lexicon.Word(5) != c.Lexicon.Word(5) {
		t.Fatal("lexicon reconstruction diverges")
	}
}

func TestImportCorpusRejectsBadInput(t *testing.T) {
	if _, _, err := ImportCorpus(strings.NewReader("{bad json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, _, err := ImportCorpus(strings.NewReader(`{"version":9}`)); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, _, err := ImportCorpus(strings.NewReader(`{"version":1,"lexicon":{"Size":10,"Seed":1},"images":[]}`)); err == nil {
		t.Fatal("empty corpus accepted")
	}
	// Tag outside the lexicon.
	bad := `{"version":1,"lexicon":{"Size":10,"ZipfS":1,"Seed":1},"images":[{"ID":0,"Width":10,"Height":10,"Objects":[{"Tag":99,"Box":{"X":0,"Y":0,"W":5,"H":5},"Salience":1}]}]}`
	if _, _, err := ImportCorpus(strings.NewReader(bad)); err == nil {
		t.Fatal("out-of-lexicon tag accepted")
	}
	// Non-dense IDs.
	sparse := `{"version":1,"lexicon":{"Size":10,"ZipfS":1,"Seed":1},"images":[{"ID":5,"Width":10,"Height":10}]}`
	if _, _, err := ImportCorpus(strings.NewReader(sparse)); err == nil {
		t.Fatal("sparse image IDs accepted")
	}
}
