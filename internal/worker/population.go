package worker

import (
	"fmt"
	"time"

	"humancomp/internal/rng"
)

// PopulationConfig parameterizes a synthetic player population.
type PopulationConfig struct {
	Size int
	// SpammerFrac and ColluderFrac are the fractions of adversarial
	// players; the rest are honest. Fractions must be non-negative and
	// sum to at most 1.
	SpammerFrac  float64
	ColluderFrac float64
	// ColludeWord is the scripted answer shared by all colluders.
	ColludeWord int
	// MeanAccuracy and AccuracySD shape the honest skill distribution
	// (normal, clamped to [0.5, 0.99]).
	MeanAccuracy float64
	AccuracySD   float64
	Seed         uint64
}

// DefaultPopulationConfig returns the honest population used by most
// experiments: skill centered at 0.85 as in the ESP Game evaluation, think
// time of a few seconds per guess, and heavy-tailed sessions whose
// parameters put median lifetime play in the tens of minutes.
func DefaultPopulationConfig(size int) PopulationConfig {
	return PopulationConfig{
		Size:         size,
		MeanAccuracy: 0.85,
		AccuracySD:   0.08,
		Seed:         1,
	}
}

// NewPopulation builds a deterministic population from cfg.
func NewPopulation(cfg PopulationConfig) []*Worker {
	if cfg.Size <= 0 {
		panic("worker: population size must be positive")
	}
	if cfg.SpammerFrac < 0 || cfg.ColluderFrac < 0 || cfg.SpammerFrac+cfg.ColluderFrac > 1 {
		panic("worker: adversarial fractions must be non-negative and sum to <= 1")
	}
	src := rng.New(cfg.Seed)
	ws := make([]*Worker, cfg.Size)
	nSpam := int(float64(cfg.Size) * cfg.SpammerFrac)
	nCollude := int(float64(cfg.Size) * cfg.ColluderFrac)
	for i := range ws {
		b := Honest
		switch {
		case i < nSpam:
			b = Spammer
		case i < nSpam+nCollude:
			b = Colluder
		}
		ws[i] = New(fmt.Sprintf("p%05d", i), b, SampleProfile(cfg, src), src)
		ws[i].ColludeWord = cfg.ColludeWord
	}
	// Shuffle so adversaries are not clustered at the front of the roster;
	// the matchmaker experiments pair players by roster position.
	src.Shuffle(len(ws), func(i, j int) { ws[i], ws[j] = ws[j], ws[i] })
	return ws
}

// SampleProfile draws one player profile from the population distribution.
func SampleProfile(cfg PopulationConfig, src *rng.Source) Profile {
	acc := src.Norm(cfg.MeanAccuracy, cfg.AccuracySD)
	if acc < 0.5 {
		acc = 0.5
	}
	if acc > 0.99 {
		acc = 0.99
	}
	return Profile{
		Accuracy:    acc,
		SynonymRate: 0.15,
		TypoRate:    0.03,
		// ~2.5s per guess: deployed ESP pairs labeled an image roughly
		// every 10 seconds, which needs fast typing with early matches.
		ThinkMean: 2500 * time.Millisecond,
		// exp(2.8) ≈ 16.4 min median session; sigma 0.9 gives the long tail.
		SessionMu:    2.8,
		SessionSigma: 0.9,
		ReturnProb:   0.55,
	}
}

// CountByBehavior tallies a population by strategy.
func CountByBehavior(ws []*Worker) map[Behavior]int {
	m := make(map[Behavior]int, 3)
	for _, w := range ws {
		m[w.Behavior]++
	}
	return m
}
