// Package worker models the humans in the loop. Deployed GWAPs run on live
// web players; the reproduction substitutes a stochastic behavioural model
// (DESIGN.md §3): players have skill, a Zipfian guessing vocabulary shaped
// by what is actually in the image, think time, log-normal session lengths
// with geometric return behaviour, and — crucially for the anti-cheating
// experiments — adversarial strategies (random spamming and collusion).
//
// The experiments sweep these parameters, so no claim rests on one magic
// worker configuration.
package worker

import (
	"fmt"
	"math"
	"time"

	"humancomp/internal/rng"
	"humancomp/internal/vocab"
)

// Behavior selects a player strategy.
type Behavior int

// Player strategies.
const (
	// Honest players try to solve the task, with skill-limited accuracy.
	Honest Behavior = iota
	// Spammer players emit popular words regardless of the task — the
	// lazy cheating strategy the ESP Game's taboo words target.
	Spammer
	// Colluder players follow a pre-agreed script ("always type X first")
	// to force agreement with co-conspirators — the strategy random
	// pairing and answer-entropy tests target.
	Colluder
	// Machine players are trained classifiers standing in as partners —
	// the "seed the games with computer vision" extension the GWAP line
	// proposes as future work. A machine labels instantly, never uses
	// synonyms (classifiers emit canonical class names) and sees mostly
	// the salient objects; it cannot play the non-labeling games.
	Machine
)

// String returns the lowercase name of the behavior.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Spammer:
		return "spammer"
	case Colluder:
		return "colluder"
	case Machine:
		return "machine"
	default:
		return fmt.Sprintf("behavior(%d)", int(b))
	}
}

// Profile holds the behavioural parameters of one simulated player.
type Profile struct {
	// Accuracy is the probability that any single emitted judgment is a
	// genuine attempt at the truth rather than noise. Honest median ≈ 0.85.
	Accuracy float64
	// SynonymRate is the probability an honest tag comes out as a synonym
	// of the canonical object name rather than the name itself.
	SynonymRate float64
	// TypoRate is the probability a typed word carries a character typo.
	TypoRate float64
	// ThinkMean is the mean think time per guess; actual think times are
	// exponential around it.
	ThinkMean time.Duration
	// SessionMu and SessionSigma parameterize the log-normal session
	// length in minutes. GWAP session data is heavy-tailed: many short
	// sessions and a devoted tail, which is exactly what log-normal gives.
	SessionMu, SessionSigma float64
	// ReturnProb is the probability the player starts another session
	// after finishing one (geometric number of lifetime sessions).
	ReturnProb float64
}

// Worker is one simulated player.
type Worker struct {
	ID       string
	Behavior Behavior
	Profile  Profile

	// ColludeWord is the scripted first answer shared by all colluders in
	// a ring; ignored for other behaviors.
	ColludeWord int

	src *rng.Source
}

// New returns a worker with its own random stream split from src.
func New(id string, b Behavior, p Profile, src *rng.Source) *Worker {
	return &Worker{ID: id, Behavior: b, Profile: p, src: src.Split()}
}

// ThinkTime returns the time the worker spends before the next guess.
func (w *Worker) ThinkTime() time.Duration {
	mean := w.Profile.ThinkMean.Seconds()
	if mean <= 0 {
		return 0
	}
	return time.Duration(w.src.Exp(1/mean) * float64(time.Second))
}

// SessionLength returns the length of the worker's next play session.
func (w *Worker) SessionLength() time.Duration {
	minutes := w.src.LogNorm(w.Profile.SessionMu, w.Profile.SessionSigma)
	return time.Duration(minutes * float64(time.Minute))
}

// Returns reports whether the worker comes back for another session.
func (w *Worker) Returns() bool { return w.src.Bool(w.Profile.ReturnProb) }

// GuessTag produces the worker's next tag guess for an ESP-style labeling
// round: the image being labeled, the taboo set (canonical IDs that are off
// limits) and the set of canonical IDs the worker already said this round.
// It returns the guessed word ID, or -1 when the worker has nothing new to
// say (all objects it can see are taboo or already used).
func (w *Worker) GuessTag(lex *vocab.Lexicon, img *vocab.Image, taboo, said map[int]bool) int {
	switch w.Behavior {
	case Spammer:
		// Popular words regardless of image content; taboo is ignored —
		// that is what makes taboo effective as a defense.
		return lex.SampleFrom(w.src)
	case Colluder:
		if !said[lex.Canonical(w.ColludeWord)] {
			return w.ColludeWord
		}
		return lex.SampleFrom(w.src)
	case Machine:
		// A classifier proposes the canonical name of a detected object
		// (detection probability = Accuracy) and otherwise a confident
		// wrong class from the popular end of the label space.
		if w.src.Bool(w.Profile.Accuracy) {
			if tag := w.pickObject(lex, img, taboo, said); tag >= 0 {
				return lex.Canonical(tag)
			}
		}
		for attempts := 0; attempts < 16; attempts++ {
			word := lex.Canonical(lex.SampleFrom(w.src))
			if !taboo[word] && !said[word] {
				return word
			}
		}
		return -1
	}
	// Honest: with probability Accuracy describe a real object (weighted
	// by salience), otherwise free-associate a popular word.
	if w.src.Bool(w.Profile.Accuracy) {
		if tag := w.pickObject(lex, img, taboo, said); tag >= 0 {
			return tag
		}
		// Everything visible is blocked; fall through to free association,
		// which is exactly what taboo words force real players into.
	}
	for attempts := 0; attempts < 16; attempts++ {
		word := lex.SampleFrom(w.src)
		can := lex.Canonical(word)
		if !taboo[can] && !said[can] {
			return word
		}
	}
	return -1
}

// pickObject samples a visible object by salience, skipping blocked
// concepts, and applies synonym substitution.
func (w *Worker) pickObject(lex *vocab.Lexicon, img *vocab.Image, taboo, said map[int]bool) int {
	total := 0.0
	for _, o := range img.Objects {
		if can := lex.Canonical(o.Tag); !taboo[can] && !said[can] {
			total += o.Salience
		}
	}
	if total <= 0 {
		return -1
	}
	u := w.src.Float64() * total
	for _, o := range img.Objects {
		can := lex.Canonical(o.Tag)
		if taboo[can] || said[can] {
			continue
		}
		u -= o.Salience
		if u > 0 {
			continue
		}
		tag := o.Tag
		if w.src.Bool(w.Profile.SynonymRate) {
			syns := lex.Synonyms(tag)
			tag = syns[w.src.Intn(len(syns))]
		}
		return tag
	}
	return -1
}

// Ping returns where the worker clicks when asked to reveal the object
// named word in the image (Peekaboom). Honest workers click inside the true
// box with probability Accuracy (uniformly within it), otherwise anywhere
// on the canvas; cheaters always click randomly.
func (w *Worker) Ping(c *vocab.Corpus, imageID, word int) (x, y int) {
	img := c.Image(imageID)
	if w.Behavior == Honest && w.src.Bool(w.Profile.Accuracy) {
		if box, ok := c.TrueBox(imageID, word); ok {
			return box.X + w.src.Intn(box.W), box.Y + w.src.Intn(box.H)
		}
	}
	return w.src.Intn(img.Width), w.src.Intn(img.Height)
}

// TraceBox returns the worker's outline of the object named word in the
// image, as a rectangle (Squigl). Honest workers trace the true box with
// edge jitter proportional to (1 − Accuracy); when they cannot see the
// object — or for cheaters — the trace is a random rectangle.
func (w *Worker) TraceBox(c *vocab.Corpus, imageID, word int) vocab.Rect {
	img := c.Image(imageID)
	if w.Behavior == Honest && w.src.Bool(w.Profile.Accuracy) {
		if box, ok := c.TrueBox(imageID, word); ok {
			jitter := (1 - w.Profile.Accuracy) * 0.6
			dx := int(w.src.Norm(0, jitter*float64(box.W)))
			dy := int(w.src.Norm(0, jitter*float64(box.H)))
			dw := int(w.src.Norm(0, jitter*float64(box.W)))
			dh := int(w.src.Norm(0, jitter*float64(box.H)))
			out := vocab.Rect{X: box.X + dx, Y: box.Y + dy, W: box.W + dw, H: box.H + dh}
			return clampRect(out, img.Width, img.Height)
		}
	}
	rw := 20 + w.src.Intn(img.Width/2)
	rh := 20 + w.src.Intn(img.Height/2)
	return vocab.Rect{X: w.src.Intn(img.Width - rw), Y: w.src.Intn(img.Height - rh), W: rw, H: rh}
}

// clampRect clips r to the canvas, keeping at least a 1×1 rectangle.
func clampRect(r vocab.Rect, width, height int) vocab.Rect {
	if r.W < 1 {
		r.W = 1
	}
	if r.H < 1 {
		r.H = 1
	}
	if r.X < 0 {
		r.X = 0
	}
	if r.Y < 0 {
		r.Y = 0
	}
	if r.X+r.W > width {
		r.X = width - r.W
		if r.X < 0 {
			r.X, r.W = 0, width
		}
	}
	if r.Y+r.H > height {
		r.Y = height - r.H
		if r.Y < 0 {
			r.Y, r.H = 0, height
		}
	}
	return r
}

// DescribeFact returns the worker's next clue about subject for a Verbosity
// round, avoiding facts already given. Honest workers state a true fact
// with probability Accuracy; otherwise (and for cheaters) they emit a
// random plausible-looking triple.
func (w *Worker) DescribeFact(fb *vocab.FactBase, subject int, given map[vocab.Fact]bool) vocab.Fact {
	if w.Behavior == Honest && w.src.Bool(w.Profile.Accuracy) {
		facts := fb.Facts(subject)
		if len(facts) > 0 {
			for _, i := range w.src.Perm(len(facts)) {
				if !given[facts[i]] {
					return facts[i]
				}
			}
		}
	}
	rel := vocab.Relations()
	return vocab.Fact{
		Subject:  subject,
		Relation: rel[w.src.Intn(len(rel))],
		Object:   fb.Lexicon.SampleFrom(w.src),
	}
}

// Transcribe returns the worker's reading of a word whose rendering has the
// given difficulty in [0, 1]. The per-word error probability grows with
// difficulty and shrinks with skill; failures are realistic typo/misread
// corruptions rather than random strings.
func (w *Worker) Transcribe(word string, difficulty float64) string {
	if w.Behavior != Honest {
		// Cheaters type junk quickly.
		return vocab.Misspell(vocab.Misspell(word, w.src), w.src)
	}
	pCorrect := w.Profile.Accuracy * (1 - 0.35*difficulty)
	out := word
	if !w.src.Bool(pCorrect) {
		out = vocab.Misspell(out, w.src)
	}
	if w.src.Bool(w.Profile.TypoRate) {
		out = vocab.Misspell(out, w.src)
	}
	return out
}

// Compare returns 0 if the worker prefers image a, 1 for image b (Matchin).
// Honest preference follows the latent aesthetic scores through a logistic
// choice model; cheaters answer uniformly.
func (w *Worker) Compare(a, b *vocab.Image) int {
	if w.Behavior != Honest {
		return w.src.Intn(2)
	}
	// Logistic discrimination: the further apart the aesthetics, the more
	// deterministic the choice. Skilled workers discriminate more sharply.
	d := (b.Aesthetic - a.Aesthetic) * 10 * w.Profile.Accuracy
	pB := 1 / (1 + math.Exp(-d))
	if w.src.Bool(pB) {
		return 1
	}
	return 0
}

// Vote returns the worker's vote on a choice task whose true class is
// truth over a label space of `classes` options. Honest workers hit the
// truth with probability Accuracy and otherwise pick a wrong class
// uniformly; spammers and machines vote uniformly at random; colluders
// vote their script regardless of content — the systematically biased
// voter that majority vote cannot discount but a confusion matrix can.
func (w *Worker) Vote(truth, classes int) int {
	if classes < 2 {
		return 0
	}
	switch w.Behavior {
	case Colluder:
		c := w.ColludeWord % classes
		if c < 0 {
			c += classes
		}
		return c
	case Spammer, Machine:
		return w.src.Intn(classes)
	}
	if w.src.Bool(w.Profile.Accuracy) {
		return truth
	}
	c := w.src.Intn(classes - 1)
	if c >= truth {
		c++
	}
	return c
}

// Judge returns 0 ("same") or 1 ("different") for a TagATune-style input-
// agreement round, given whether the two inputs truly match. Honest workers
// are right with probability Accuracy.
func (w *Worker) Judge(same bool) int {
	correct := w.src.Bool(w.Profile.Accuracy) && w.Behavior == Honest
	if correct == same {
		return 0
	}
	return 1
}
