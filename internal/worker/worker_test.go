package worker

import (
	"testing"
	"time"

	"humancomp/internal/rng"
	"humancomp/internal/vocab"
)

func testCorpus() *vocab.Corpus {
	return vocab.NewCorpus(vocab.CorpusConfig{
		Lexicon:     vocab.LexiconConfig{Size: 400, ZipfS: 1, SynonymRate: 0.25, Seed: 1},
		NumImages:   200,
		MeanObjects: 4,
		CanvasW:     640,
		CanvasH:     480,
		Seed:        2,
	})
}

func honest(accuracy float64) *Worker {
	return New("h", Honest, Profile{
		Accuracy:    accuracy,
		SynonymRate: 0.15,
		TypoRate:    0.03,
		ThinkMean:   5 * time.Second,
		SessionMu:   2.8, SessionSigma: 0.9,
		ReturnProb: 0.5,
	}, rng.New(7))
}

func TestHonestGuessesAreMostlyTrueTags(t *testing.T) {
	c := testCorpus()
	w := honest(0.9)
	good, total := 0, 0
	for imgID := 0; imgID < 100; imgID++ {
		said := map[int]bool{}
		for g := 0; g < 5; g++ {
			tag := w.GuessTag(c.Lexicon, c.Image(imgID), nil, said)
			if tag < 0 {
				break
			}
			said[c.Lexicon.Canonical(tag)] = true
			total++
			if c.IsTrueTag(imgID, tag) {
				good++
			}
		}
	}
	if total == 0 {
		t.Fatal("no guesses produced")
	}
	// With accuracy 0.9 and ~4 objects per image the early guesses are
	// mostly true; later guesses exhaust the objects. Expect well over half.
	if frac := float64(good) / float64(total); frac < 0.55 {
		t.Errorf("true-tag fraction = %.2f, want > 0.55 (%d/%d)", frac, good, total)
	}
}

func TestGuessTagRespectsTabooAndSaid(t *testing.T) {
	c := testCorpus()
	w := honest(0.95)
	for imgID := 0; imgID < 50; imgID++ {
		img := c.Image(imgID)
		taboo := map[int]bool{}
		for _, o := range img.Objects {
			taboo[c.Lexicon.Canonical(o.Tag)] = true
		}
		said := map[int]bool{}
		for g := 0; g < 10; g++ {
			tag := w.GuessTag(c.Lexicon, img, taboo, said)
			if tag < 0 {
				break
			}
			can := c.Lexicon.Canonical(tag)
			if taboo[can] {
				t.Fatalf("honest worker said taboo word %d", tag)
			}
			if said[can] {
				t.Fatalf("honest worker repeated concept %d", can)
			}
			said[can] = true
		}
	}
}

func TestSpammerIgnoresImage(t *testing.T) {
	c := testCorpus()
	w := New("s", Spammer, Profile{Accuracy: 0.9}, rng.New(3))
	good, total := 0, 0
	for imgID := 0; imgID < 100; imgID++ {
		tag := w.GuessTag(c.Lexicon, c.Image(imgID), nil, map[int]bool{})
		total++
		if c.IsTrueTag(imgID, tag) {
			good++
		}
	}
	// Spam hits a true tag only by luck; with 400 words and ~4 objects the
	// Zipf head inflates this somewhat, but it must stay well under honest.
	if frac := float64(good) / float64(total); frac > 0.4 {
		t.Errorf("spammer true-tag fraction = %.2f, suspiciously high", frac)
	}
}

func TestColluderLeadsWithScript(t *testing.T) {
	c := testCorpus()
	w := New("c", Colluder, Profile{}, rng.New(4))
	w.ColludeWord = 123
	tag := w.GuessTag(c.Lexicon, c.Image(0), nil, map[int]bool{})
	if tag != 123 {
		t.Fatalf("colluder first guess = %d, want scripted 123", tag)
	}
	said := map[int]bool{c.Lexicon.Canonical(123): true}
	if w.GuessTag(c.Lexicon, c.Image(0), nil, said) == 123 {
		t.Error("colluder repeated script after it was said")
	}
}

func TestPingAccuracy(t *testing.T) {
	c := testCorpus()
	w := honest(0.95)
	inBox, total := 0, 0
	for imgID := 0; imgID < 100; imgID++ {
		img := c.Image(imgID)
		word := img.Objects[0].Tag
		box := img.Objects[0].Box
		for k := 0; k < 10; k++ {
			x, y := w.Ping(c, imgID, word)
			if x < 0 || y < 0 || x >= img.Width || y >= img.Height {
				t.Fatalf("ping (%d,%d) off canvas", x, y)
			}
			total++
			if box.Contains(x, y) {
				inBox++
			}
		}
	}
	if frac := float64(inBox) / float64(total); frac < 0.85 {
		t.Errorf("in-box ping fraction = %.2f, want ~accuracy", frac)
	}
}

func TestPingOnUnknownWordStillOnCanvas(t *testing.T) {
	c := testCorpus()
	w := honest(0.95)
	img := c.Image(0)
	// A word that is not in the image: worker must click somewhere anyway.
	missing := -1
	for word := 0; word < c.Lexicon.Size(); word++ {
		if !c.IsTrueTag(0, word) {
			missing = word
			break
		}
	}
	x, y := w.Ping(c, 0, missing)
	if x < 0 || y < 0 || x >= img.Width || y >= img.Height {
		t.Fatalf("ping (%d,%d) off canvas", x, y)
	}
}

func TestDescribeFactAccuracy(t *testing.T) {
	fb := vocab.NewFactBase(vocab.FactBaseConfig{
		Lexicon:      vocab.LexiconConfig{Size: 400, ZipfS: 1, SynonymRate: 0.2, Seed: 1},
		FactsPerWord: 5,
		Seed:         9,
	})
	w := honest(0.9)
	trueFacts, total := 0, 0
	for subj := 0; subj < 200; subj++ {
		given := map[vocab.Fact]bool{}
		for k := 0; k < 3; k++ {
			f := w.DescribeFact(fb, subj, given)
			given[f] = true
			total++
			if fb.IsTrue(f) {
				trueFacts++
			}
		}
	}
	if frac := float64(trueFacts) / float64(total); frac < 0.7 {
		t.Errorf("true-fact fraction = %.2f, want >= ~accuracy-ish", frac)
	}
}

func TestDescribeFactAvoidsRepeats(t *testing.T) {
	fb := vocab.NewFactBase(vocab.FactBaseConfig{
		Lexicon:      vocab.LexiconConfig{Size: 100, ZipfS: 1, Seed: 1},
		FactsPerWord: 3,
		Seed:         10,
	})
	w := honest(1.0) // always tries true facts
	given := map[vocab.Fact]bool{}
	n := len(fb.Facts(5))
	for k := 0; k < n; k++ {
		f := w.DescribeFact(fb, 5, given)
		if given[f] {
			t.Fatalf("repeated fact %+v while fresh true facts remained", f)
		}
		given[f] = true
	}
}

func TestTranscribeDifficultyCurve(t *testing.T) {
	w := honest(0.92)
	correctAt := func(diff float64) float64 {
		correct := 0
		const n = 5000
		for i := 0; i < n; i++ {
			if w.Transcribe("bandemo", diff) == "bandemo" {
				correct++
			}
		}
		return float64(correct) / n
	}
	easy, hard := correctAt(0.0), correctAt(1.0)
	if easy <= hard {
		t.Errorf("accuracy easy %.2f <= hard %.2f", easy, hard)
	}
	if easy < 0.8 {
		t.Errorf("easy accuracy %.2f too low", easy)
	}
}

func TestTranscribeCheaterIsWrong(t *testing.T) {
	w := New("s", Spammer, Profile{Accuracy: 0.99}, rng.New(5))
	correct := 0
	for i := 0; i < 1000; i++ {
		if w.Transcribe("bandemo", 0) == "bandemo" {
			correct++
		}
	}
	if correct > 100 {
		t.Errorf("cheater transcribed correctly %d/1000 times", correct)
	}
}

func TestCompareFollowsAesthetics(t *testing.T) {
	w := honest(0.9)
	a := &vocab.Image{Aesthetic: 0.2}
	b := &vocab.Image{Aesthetic: 0.9}
	bWins := 0
	for i := 0; i < 2000; i++ {
		if w.Compare(a, b) == 1 {
			bWins++
		}
	}
	if frac := float64(bWins) / 2000; frac < 0.9 {
		t.Errorf("high-aesthetic image preferred only %.2f of the time", frac)
	}
}

func TestJudgeAccuracy(t *testing.T) {
	w := honest(0.9)
	right := 0
	const n = 4000
	for i := 0; i < n; i++ {
		same := i%2 == 0
		got := w.Judge(same)
		if (got == 0) == same {
			right++
		}
	}
	if frac := float64(right) / n; frac < 0.85 {
		t.Errorf("judge accuracy = %.2f", frac)
	}
}

func TestSessionAndThinkDistributions(t *testing.T) {
	w := honest(0.9)
	for i := 0; i < 1000; i++ {
		if w.SessionLength() <= 0 {
			t.Fatal("non-positive session length")
		}
		if w.ThinkTime() < 0 {
			t.Fatal("negative think time")
		}
	}
	zero := New("z", Honest, Profile{}, rng.New(6))
	if zero.ThinkTime() != 0 {
		t.Error("zero ThinkMean should yield zero think time")
	}
}

func TestPopulationComposition(t *testing.T) {
	cfg := DefaultPopulationConfig(1000)
	cfg.SpammerFrac = 0.1
	cfg.ColluderFrac = 0.2
	cfg.ColludeWord = 42
	ws := NewPopulation(cfg)
	counts := CountByBehavior(ws)
	if counts[Spammer] != 100 || counts[Colluder] != 200 || counts[Honest] != 700 {
		t.Fatalf("composition = %v", counts)
	}
	ids := map[string]bool{}
	for _, w := range ws {
		if ids[w.ID] {
			t.Fatalf("duplicate worker ID %s", w.ID)
		}
		ids[w.ID] = true
		if w.Profile.Accuracy < 0.5 || w.Profile.Accuracy > 0.99 {
			t.Fatalf("accuracy %v outside clamp", w.Profile.Accuracy)
		}
		if w.Behavior == Colluder && w.ColludeWord != 42 {
			t.Fatal("colluder missing script word")
		}
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a := NewPopulation(DefaultPopulationConfig(100))
	b := NewPopulation(DefaultPopulationConfig(100))
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Profile != b[i].Profile || a[i].Behavior != b[i].Behavior {
			t.Fatalf("populations diverge at %d", i)
		}
	}
}

func TestPopulationPanics(t *testing.T) {
	for name, cfg := range map[string]PopulationConfig{
		"size 0":        {Size: 0},
		"fractions > 1": {Size: 10, SpammerFrac: 0.6, ColluderFrac: 0.6},
		"negative frac": {Size: 10, SpammerFrac: -0.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			NewPopulation(cfg)
		}()
	}
}

func TestBehaviorString(t *testing.T) {
	if Honest.String() != "honest" || Spammer.String() != "spammer" || Colluder.String() != "colluder" {
		t.Error("behavior strings wrong")
	}
	if Behavior(9).String() == "" {
		t.Error("unknown behavior should stringify")
	}
}

func TestMachineGuessesCanonicalTrueTags(t *testing.T) {
	c := testCorpus()
	m := New("m", Machine, Profile{Accuracy: 0.8}, rng.New(21))
	good, total := 0, 0
	for imgID := 0; imgID < 100; imgID++ {
		said := map[int]bool{}
		for g := 0; g < 3; g++ {
			tag := m.GuessTag(c.Lexicon, c.Image(imgID), nil, said)
			if tag < 0 {
				break
			}
			// Classifiers emit canonical class names only.
			if c.Lexicon.Canonical(tag) != tag {
				t.Fatalf("machine emitted non-canonical word %d", tag)
			}
			said[tag] = true
			total++
			if c.IsTrueTag(imgID, tag) {
				good++
			}
		}
	}
	if total == 0 {
		t.Fatal("machine produced no guesses")
	}
	frac := float64(good) / float64(total)
	if frac < 0.45 {
		t.Errorf("machine true-tag fraction = %.2f with accuracy 0.8", frac)
	}
	// A weak classifier must be visibly worse.
	weak := New("w", Machine, Profile{Accuracy: 0.2}, rng.New(22))
	weakGood, weakTotal := 0, 0
	for imgID := 0; imgID < 100; imgID++ {
		tag := weak.GuessTag(c.Lexicon, c.Image(imgID), nil, map[int]bool{})
		if tag < 0 {
			continue
		}
		weakTotal++
		if c.IsTrueTag(imgID, tag) {
			weakGood++
		}
	}
	if weakTotal > 0 && float64(weakGood)/float64(weakTotal) >= frac {
		t.Error("weak classifier not worse than strong one")
	}
}

func TestMachineRespectsTaboo(t *testing.T) {
	c := testCorpus()
	m := New("m", Machine, Profile{Accuracy: 0.9}, rng.New(23))
	img := c.Image(0)
	taboo := map[int]bool{}
	for _, o := range img.Objects {
		taboo[c.Lexicon.Canonical(o.Tag)] = true
	}
	for g := 0; g < 20; g++ {
		tag := m.GuessTag(c.Lexicon, img, taboo, map[int]bool{})
		if tag >= 0 && taboo[c.Lexicon.Canonical(tag)] {
			t.Fatal("machine emitted taboo word")
		}
	}
}
